#include "sim/executor.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "ir/traverse.h"
#include "sim/classify.h"
#include "sim/coalesce.h"
#include "support/logging.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/trace.h"

namespace npp {

namespace {

int64_t
asIndex(double v)
{
    return static_cast<int64_t>(std::llround(v));
}

double
log2i(int64_t v)
{
    double steps = 0;
    while (v > 1) {
        v >>= 1;
        steps += 1;
    }
    return steps;
}

/**
 * The per-launch executor. One instance runs the whole grid.
 */
class DeviceExecutor
{
  public:
    DeviceExecutor(const KernelSpec &spec, const Bindings &args,
                   const DeviceConfig &device, const ExecOptions &options)
        : spec(spec),
          prog(*spec.prog),
          device(device),
          options(options),
          ctx(prog),
          probe(device, stats)
    {
        args.seed(ctx);
        for (const Expr *e : spec.prefetchedSites)
            prefetchSiteIds.insert(e->readSite);
        // Null when no site is prefetched so the access hot path skips
        // the per-access set lookup entirely.
        probe.prefetchedSites =
            prefetchSiteIds.empty() ? nullptr : &prefetchSiteIds;
        ctx.probe = &probe;
        ctx.accessOpCost = spec.rawPointers ? 1 : 2;

        // Metrics-only runs privatize the output buffers: stores still
        // execute (in-place programs read what they wrote), but the
        // caller's arrays are untouched, so concurrent trials over one
        // Bindings are race-free. traceAddr is unaffected, so metrics
        // are bit-identical to a functional run.
        if (options.metricsOnly) {
            for (const auto &v : prog.vars()) {
                if (v.role != VarRole::ArrayParam || !v.isOutput)
                    continue;
                ArraySlot &slot = ctx.arrays[v.id];
                if (!slot.data)
                    continue;
                PrivateCopy pc;
                pc.src = slot.data;
                pc.copy.assign(slot.data, slot.data + slot.physSize);
                privateCopies.push_back(std::move(pc));
                slot.data = privateCopies.back().copy.data();
            }
        }
    }

    KernelStats
    run()
    {
        resolveLevels();
        geom = makeGeometry(spec.mapping, levelSizes);
        prepareWarpShape();
        prepareLocals();

        // Trace-site ids are dense pre-order integers, so the probe can
        // direct-index all per-(site, tile, lane) state for the launch.
        numSites = maxTraceSite(prog.root()) + 1;
        probe.configure(numSites, tilesPerBlock, prog.numVars());

        stats.totalBlocks = geom.totalBlocks;
        stats.threadsPerBlock = geom.threadsPerBlock;
        stats.sharedMemPerBlock = spec.sharedMemPerBlock;

        // Line-reuse is only effective while every resident thread can
        // keep one cache line live per access stream.
        {
            const int64_t tpb = std::max<int64_t>(geom.threadsPerBlock, 1);
            const int64_t blocksPerSM = std::max<int64_t>(
                1, std::min<int64_t>(device.maxBlocksPerSM,
                                     device.maxThreadsPerSM / tpb));
            const int64_t activeSMs = std::max<int64_t>(
                1, std::min<int64_t>(device.numSMs, geom.totalBlocks));
            const int64_t residentPerSM =
                std::min(blocksPerSM, ceilDiv(geom.totalBlocks, activeSMs)) *
                tpb;
            probe.lineReuse =
                residentPerSM * device.transactionBytes <=
                device.l1CacheBytes;
        }

        // GroupBy seeds its key domain with the combiner identity (the
        // generated code memsets / initializes the output first).
        if (prog.root().kind == PatternKind::GroupBy) {
            const int out = prog.rootOutput();
            ctx.probe = nullptr;
            for (int64_t k = 0; k < ctx.arrays[out].size; k++) {
                storeArray(prog.root().site, out, k,
                           combinerIdentity(prog.root().combiner), ctx);
            }
            ctx.probe = &probe;
        }

        const int64_t sampleStride =
            std::max<int64_t>(1, ceilDiv(geom.totalBlocks,
                                         options.maxSampledBlocks));
        int64_t measured = 0;

        if (options.siteStats) {
            siteTrafficDense.assign(numSites, SiteTraffic{});
            probe.siteTraffic = &siteTrafficDense;
        }

        // Block-equivalence classing: only legal when outputs need not
        // be materialized (skipped blocks never run their stores), and
        // only profitable with blocks to merge. Site attribution rides
        // along: per-site deltas are recorded on the representatives and
        // replicated with the aggregates. Whenever classing does not
        // engage, record why (surfaced as KernelStats::classReason).
        bool classed = options.blockClasses && options.metricsOnly &&
                       geom.totalBlocks > 2;
        std::string classReason;
        if (!options.blockClasses)
            classReason = "block classing disabled (ExecOptions)";
        else if (!options.metricsOnly)
            classReason = "functional run materializes outputs in every "
                          "block";
        else if (geom.totalBlocks <= 2)
            classReason = "too few blocks to merge";
        if (spec.consolidation.enabled) {
            // Queue contents are a function of the bound extents, so no
            // two groups are provably equivalent without reading data.
            classed = false;
            classReason = "consolidated bins are data-dependent; every "
                          "group simulated exactly";
            prepareConsolidation();
        }
        if (classed) {
            const BlockClassPlan plan =
                analyzeBlockClasses(spec, geom, levelSizes, ctx, device);
            classed = plan.classable;
            if (!plan.classable)
                classReason = plan.reason;
        }

        if (classed) {
            const KernelStats preLoop = stats;
            if (!runBlocksClassed(sampleStride, measured)) {
                // Dynamic verification failed: the static analysis was
                // wrong somewhere. Rewind stats and array state, then
                // simulate every block.
                stats = preLoop;
                compactionElems = compactionKept = compactionChunks = 0;
                filterCursor = 0;
                if (options.siteStats)
                    siteTrafficDense.assign(numSites, SiteTraffic{});
                for (PrivateCopy &pc : privateCopies) {
                    std::copy(pc.src, pc.src + pc.copy.size(),
                              pc.copy.data());
                }
                measured = 0;
                classed = false;
                classReason =
                    fmt("block {} diverged from its equivalence class",
                        divergedBlock);
            }
        }
        if (!classed) {
            if (spec.consolidation.enabled)
                runBlocksConsolidated(sampleStride, measured);
            else
                runBlocksExact(sampleStride, measured);
        }
        stats.classReason = classed ? std::string() : classReason;

        finishSplit();
        finishFilterCount();
        finishCompaction();
        finishConsolidation();

        if (options.siteStats) {
            // The dense vector is already site-ordered; untouched sites
            // stay all-zero and are dropped, matching the sparse export.
            for (const SiteTraffic &st : siteTrafficDense) {
                if (st.accesses != 0.0 || st.transactions != 0.0 ||
                    st.usefulBytes != 0.0) {
                    stats.siteTraffic.push_back(st);
                }
            }
        }

        // Generated (non-raw-pointer) kernels pay the array-wrapper tax.
        if (!spec.rawPointers) {
            stats.transactions *= device.wrapperTrafficFactor;
            for (SiteTraffic &st : stats.siteTraffic)
                st.transactions *= device.wrapperTrafficFactor;
        }

        // Extrapolate the sampled traffic to the whole grid. The global
        // useful-byte tally accrues on *every* block (the probe counts it
        // before its countTraffic gate), so it is already whole-grid
        // exact — scaling it with the sampled traffic would double-count
        // and inflate the reported coalescing efficiency. Per-site useful
        // bytes are countTraffic-gated and do need the extrapolation.
        if (measured < geom.totalBlocks && measured > 0) {
            const double factor =
                static_cast<double>(geom.totalBlocks) / measured;
            const double exactUsefulBytes = stats.usefulBytes;
            stats.scaleTraffic(factor);
            stats.usefulBytes = exactUsefulBytes;
            stats.mallocs *= factor;
            stats.sampledFraction =
                static_cast<double>(measured) / geom.totalBlocks;
        }
        return stats;
    }

  private:
    //
    // Block loops
    //

    /** Simulate one block (the body of the historical serial loop). */
    void
    simulateBlock(int64_t block, bool countTraffic)
    {
        decodeBlock(block);
        probe.countTraffic = countTraffic;
        lastOpCount = ctx.opCount;
        setSig(static_cast<uint64_t>(block) * 0x9e3779b97f4a7c15ULL);
        execPattern(prog.root(), 0, /*isRoot=*/true);
        flushOps(countTraffic);
        probe.finishBlock();
        settleDivergence();
    }

    void
    runBlocksExact(int64_t sampleStride, int64_t &measured)
    {
        for (int64_t block = 0; block < geom.totalBlocks; block++) {
            const bool measure = block % sampleStride == 0;
            if (measure)
                measured++;
            simulateBlock(block, measure);
        }
    }

    /** Consolidated block loop (Strategy::Consolidate): each block is
     *  one bin group of binLanes parents whose variable-length child
     *  domains drain through a shared work queue. */
    void
    runBlocksConsolidated(int64_t sampleStride, int64_t &measured)
    {
        for (int64_t block = 0; block < geom.totalBlocks; block++) {
            const bool measure = block % sampleStride == 0;
            if (measure)
                measured++;
            decodeBlock(block);
            probe.countTraffic = measure;
            lastOpCount = ctx.opCount;
            setSig(static_cast<uint64_t>(block) * 0x9e3779b97f4a7c15ULL);
            execConsolidatedRoot();
            flushOps(measure);
            probe.finishBlock();
            settleDivergence();
        }
    }

    /**
     * Execute one bin group of the consolidated mapping in three phases
     * (mirroring the generated two-kernel structure):
     *
     *  A. queue build — every lane evaluates its parent's prologue lets
     *     and the data-dependent inner extent at one shared signature,
     *     so the extent gather coalesces across the group; the lets and
     *     extents are snapshotted (the queue carries them).
     *  B. consumption — the concatenated child work drains in full
     *     waves of binLanes entries, parent-major, one signature per
     *     wave: lane t of wave w executes queue entry w*L + t. Reduce
     *     partials accumulate in queue order, which equals the
     *     reference interpreter's ascending per-parent child order, so
     *     outputs are bit-identical by construction.
     *  C. finalize — every lane re-takes its parent, binds the nested
     *     result, and runs the suffix statements plus the root yield.
     *
     * The queue round trip itself (entry writes + reads) is charged
     * analytically in finishConsolidation from the whole-grid
     * accumulators, like the compaction finalize kernel.
     */
    void
    execConsolidatedRoot()
    {
        const Pattern &root = prog.root();
        NPP_ASSERT(consNested && consNested->pattern,
                   "consolidated spec without a nested pattern");
        const Pattern &inner = *consNested->pattern;
        const auto &g0 = geom.levels[0];
        const bool rootShard = shardSize >= 0;
        const int64_t size =
            rootShard ? shardSize : asIndex(evalExpr(root.size, ctx));
        const int64_t rootOff = rootShard ? shardLo : 0;
        const int64_t L = std::max<int64_t>(g0.blockSize, 1);
        const int64_t lo = blockCoord[0] * g0.blockSize;
        const int64_t hi = std::min(size, lo + g0.blockSize);
        if (lo >= hi)
            return;
        const int64_t parents = hi - lo;
        const size_t numLets = consPrefixVars.size();
        const uint64_t sigSave = curSig;

        // Phase A: prologue + extent gather.
        consParentExtent.assign(parents, 0);
        consParentLets.assign(parents * numLets, 0.0);
        setSig(sigSave * 1000003ull + 1);
        for (int64_t t = 0; t < parents; t++) {
            bindLane(g0.dim, t);
            const int64_t idx = lo + t + rootOff;
            ctx.scalars[root.indexVar] = static_cast<double>(idx);
            curLevelIndex[0] = idx;
            runStmtList(consPrefix, 0);
            consParentExtent[t] = std::max<int64_t>(
                0, asIndex(evalExpr(inner.size, ctx)));
            for (size_t v = 0; v < numLets; v++)
                consParentLets[t * numLets + v] =
                    ctx.scalars[consPrefixVars[v]];
        }

        int64_t entries = 0;
        for (int64_t n : consParentExtent)
            entries += n;
        const int64_t waves = ceilDiv(entries, L);
        // Whole-grid exact (accrues on every block, like the compaction
        // accumulators): feeds the analytic queue-build stage.
        consGroups += 1;
        consParents += parents;
        consEntries += entries;
        consWaves += waves;

        // Phase B: wave consumption.
        const bool isReduce = inner.kind == PatternKind::Reduce;
        if (isReduce) {
            consAcc.assign(parents, combinerIdentity(inner.combiner));
        }
        int64_t p = 0;        // current parent lane
        int64_t consumed = 0; // children of parent p already drained
        int64_t q = 0;        // queue cursor
        for (int64_t w = 0; w < waves; w++) {
            setSig(sigSave * 1000003ull + static_cast<uint64_t>(w) + 2);
            for (int64_t t = 0; t < L && q < entries; t++, q++) {
                while (consumed >= consParentExtent[p]) {
                    p++;
                    consumed = 0;
                }
                const int64_t j = consumed++;
                bindLane(g0.dim, t);
                restoreConsolidatedParent(p, lo, rootOff);
                ctx.scalars[inner.indexVar] = static_cast<double>(j);
                curLevelIndex[1] = j;
                runStmts(inner.body, 1);
                if (isReduce) {
                    consAcc[p] = applyOp(inner.combiner, consAcc[p],
                                         evalExpr(inner.yield, ctx));
                }
            }
            // Per-wave segmented combine across the group's lanes: a
            // log2 shuffle ladder per warp; block bins also cross warps
            // through shared memory (same shape as finishReduce).
            if (isReduce && probe.countTraffic) {
                const double warpsPerPass = std::max(
                    1.0, static_cast<double>(geom.threadsPerBlock) /
                             device.warpSize);
                stats.warpInstructions +=
                    log2i(std::min<int64_t>(L, device.warpSize)) *
                    warpsPerPass;
                if (L > device.warpSize) {
                    stats.smemAccesses += 2.0 * warpsPerPass;
                    stats.syncs += 1.0;
                }
            }
        }

        // Phase C: finalize.
        setSig(sigSave * 16777619ull + 1);
        for (int64_t t = 0; t < parents; t++) {
            bindLane(g0.dim, t);
            restoreConsolidatedParent(t, lo, rootOff);
            if (isReduce && consNested->var >= 0)
                ctx.scalars[consNested->var] = consAcc[t];
            runStmtList(consSuffix, 0);
            if (root.kind == PatternKind::Map ||
                root.kind == PatternKind::ZipWith) {
                storeArray(root.site, prog.rootOutput(), lo + t + rootOff,
                           evalExpr(root.yield, ctx), ctx);
            }
        }
        unbindLane(g0.dim);
        setSig(sigSave);
    }

    /** Re-take parent `p` of the current group: root index plus the
     *  queue-carried prologue scalars (restored, not re-evaluated — the
     *  entry reads are charged analytically in finishConsolidation). */
    void
    restoreConsolidatedParent(int64_t p, int64_t lo, int64_t rootOff)
    {
        const int64_t idx = lo + p + rootOff;
        ctx.scalars[prog.root().indexVar] = static_cast<double>(idx);
        curLevelIndex[0] = idx;
        const size_t numLets = consPrefixVars.size();
        for (size_t v = 0; v < numLets; v++)
            ctx.scalars[consPrefixVars[v]] =
                consParentLets[static_cast<size_t>(p) * numLets + v];
    }

    /** Everything one block contributes that must replicate across its
     *  equivalence class: the accumulating stats fields, the compaction
     *  accumulators a nested filter drives through its cursor, and (under
     *  siteStats) the per-site traffic buckets. All FP members are sums
     *  of dyadic rationals with bounded precision (pow2 block sizes make
     *  every per-warp weight a power-of-two fraction), so FP accumulation
     *  is exact and per-block deltas replicate bit-identically. */
    struct BlockDelta
    {
        KernelStats stats;
        int64_t compactionElems = 0;
        int64_t compactionKept = 0;
        int64_t compactionChunks = 0;
        /** Per-site contributions, sorted by site id; zero-delta sites
         *  are dropped so the vector compares mode-independently. */
        std::vector<SiteTraffic> sites;
    };

    static KernelStats
    statsDelta(const KernelStats &after, const KernelStats &before)
    {
        KernelStats d;
        d.warpInstructions = after.warpInstructions - before.warpInstructions;
        d.transactions = after.transactions - before.transactions;
        d.usefulBytes = after.usefulBytes - before.usefulBytes;
        d.smemAccesses = after.smemAccesses - before.smemAccesses;
        d.syncs = after.syncs - before.syncs;
        d.mallocs = after.mallocs - before.mallocs;
        return d;
    }

    static bool
    sameDelta(const BlockDelta &a, const BlockDelta &b)
    {
        return a.stats.warpInstructions == b.stats.warpInstructions &&
               a.stats.transactions == b.stats.transactions &&
               a.stats.usefulBytes == b.stats.usefulBytes &&
               a.stats.smemAccesses == b.stats.smemAccesses &&
               a.stats.syncs == b.stats.syncs &&
               a.stats.mallocs == b.stats.mallocs &&
               a.compactionElems == b.compactionElems &&
               a.compactionKept == b.compactionKept &&
               a.compactionChunks == b.compactionChunks &&
               a.sites == b.sites;
    }

    /** The per-site traffic this block added over `before` (site-ordered,
     *  zero deltas dropped). */
    std::vector<SiteTraffic>
    siteDelta(const std::vector<SiteTraffic> &before) const
    {
        std::vector<SiteTraffic> d;
        for (int site = 0; site < numSites; site++) {
            SiteTraffic s = siteTrafficDense[site];
            const SiteTraffic &b = before[site];
            s.transactions -= b.transactions;
            s.usefulBytes -= b.usefulBytes;
            s.accesses -= b.accesses;
            if (s.transactions != 0.0 || s.usefulBytes != 0.0 ||
                s.accesses != 0.0) {
                s.site = site;
                d.push_back(s);
            }
        }
        return d;
    }

    /** Replicate a representative's delta for one skipped block. Serial
     *  execution counts traffic (aggregate and per-site) only on sampled
     *  blocks, but useful bytes and the compaction accumulators on every
     *  block; replication honors the same split. */
    void
    applyDelta(const BlockDelta &d, bool measure)
    {
        stats.usefulBytes += d.stats.usefulBytes;
        compactionElems += d.compactionElems;
        compactionKept += d.compactionKept;
        compactionChunks += d.compactionChunks;
        if (!measure)
            return;
        stats.warpInstructions += d.stats.warpInstructions;
        stats.transactions += d.stats.transactions;
        stats.smemAccesses += d.stats.smemAccesses;
        stats.syncs += d.stats.syncs;
        stats.mallocs += d.stats.mallocs;
        for (const SiteTraffic &s : d.sites) {
            SiteTraffic &st = siteTrafficDense[s.site];
            st.site = s.site;
            st.transactions += s.transactions;
            st.usefulBytes += s.usefulBytes;
            st.accesses += s.accesses;
        }
    }

    /** Per-level pattern sizes (launch-known in classed mode), cached for
     *  the class key. */
    void
    prepareClassSizes()
    {
        levelPatSizes.assign(geom.levels.size(), {});
        for (const auto &[pattern, level] : collectPatterns(prog.root())) {
            // Level 0 holds only the root; under a shard its extent is
            // the shard size (matching the launch geometry), so class
            // keys — and therefore replication — stay per-shard exact.
            const int64_t s = level == 0 && shardSize >= 0
                                  ? shardSize
                                  : asIndex(evalExpr(pattern->size, ctx));
            levelPatSizes[level].push_back(s);
        }
    }

    /** Equivalence-class key of a block: the per-pattern index extents it
     *  covers at every level. Two blocks with equal extents run the same
     *  lane structure; the classability analysis guarantees equal metrics
     *  too. Block 0 is salted out because root reduces store their result
     *  from it. */
    uint64_t
    classKey(int64_t block) const
    {
        uint64_t h = 0xcbf29ce484222325ull;
        const auto mix = [&h](uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        };
        if (block == 0)
            mix(0x5a17);
        int64_t rem = block;
        for (size_t lv = 0; lv < geom.levels.size(); lv++) {
            const auto &g = geom.levels[lv];
            const int64_t b = rem % g.blocks;
            rem /= g.blocks;
            for (int64_t size : levelPatSizes[lv]) {
                int64_t lo = 0;
                int64_t hi = size;
                switch (g.span.kind) {
                  case SpanKind::One:
                    lo = b * g.blockSize;
                    hi = std::min(size, lo + g.blockSize);
                    break;
                  case SpanKind::N:
                    lo = b * g.blockSize * g.span.factor;
                    hi = std::min(size,
                                  lo + g.blockSize * g.span.factor);
                    break;
                  case SpanKind::All:
                  case SpanKind::Split:
                    break; // single block / gated
                }
                mix(static_cast<uint64_t>(std::max<int64_t>(hi - lo, 0)));
            }
        }
        return h;
    }

    /** Is this class ordinal one of the four probe members: the first
     *  two (the second verifies the first bitwise) plus two spread
     *  across the class at the 1/3 and 2/3 member positions? The spread
     *  probes catch scattered per-block model artifacts the static
     *  analysis cannot see — before the coalescing model went
     *  shift-invariant, the differential bench found exactly such a case
     *  in sumWeightedRows at 512^2. */
    static bool
    isProbeMember(int64_t ordinal, int64_t members)
    {
        return ordinal < 2 || ordinal == members / 3 ||
               ordinal == 2 * members / 3;
    }

    /** Classed block loop, two phases. Phase 1 simulates only the probe
     *  members of each class, in block order, and verifies that their
     *  deltas (aggregate stats, compaction accumulators, and per-site
     *  traffic) agree — so a refused launch bails to exact simulation
     *  having paid for nothing but the probe runs, never for the
     *  replication bookkeeping of the skipped blocks. Phase 2 replicates
     *  the verified delta for every remaining block. Splitting the loop
     *  cannot change the result: a classed-legal launch has block-uniform
     *  control and addressing (simulated blocks see identical state
     *  either way, in the same relative order), and every accumulator is
     *  a sum of exactly-representable dyadic rationals, so the summation
     *  order the split changes cannot change the totals. Returns false
     *  when any probe's delta disagrees. */
    bool
    runBlocksClassed(int64_t sampleStride, int64_t &measured)
    {
        prepareClassSizes();
        struct ClassInfo
        {
            BlockDelta delta;
            int sims = 0;
            int64_t members = 0; //!< total size (pre-pass)
            int64_t seen = 0;    //!< members visited so far
        };
        std::unordered_map<uint64_t, ClassInfo> classes;
        std::vector<uint64_t> keyOf(geom.totalBlocks);
        for (int64_t block = 0; block < geom.totalBlocks; block++) {
            keyOf[block] = classKey(block);
            classes[keyOf[block]].members++;
        }

        for (int64_t block = 0; block < geom.totalBlocks; block++) {
            ClassInfo &cls = classes[keyOf[block]];
            const int64_t ordinal = cls.seen++;
            if (!isProbeMember(ordinal, cls.members))
                continue;
            const bool measure = block % sampleStride == 0;
            const KernelStats before = stats;
            const int64_t beforeElems = compactionElems;
            const int64_t beforeKept = compactionKept;
            const int64_t beforeChunks = compactionChunks;
            std::vector<SiteTraffic> beforeSites;
            if (options.siteStats)
                beforeSites = siteTrafficDense;
            simulateBlock(block, /*countTraffic=*/true);
            BlockDelta delta;
            delta.stats = statsDelta(stats, before);
            delta.compactionElems = compactionElems - beforeElems;
            delta.compactionKept = compactionKept - beforeKept;
            delta.compactionChunks = compactionChunks - beforeChunks;
            if (options.siteStats)
                delta.sites = siteDelta(beforeSites);
            if (cls.sims >= 1 && !sameDelta(cls.delta, delta)) {
                NPP_WARN("{}: block {} diverged from its equivalence "
                         "class; exact re-simulation",
                         prog.name(), block);
                divergedBlock = block;
                return false;
            }
            const double dUsefulBytes = delta.stats.usefulBytes;
            if (cls.sims == 0)
                cls.delta = std::move(delta);
            cls.sims++;
            if (!measure) {
                // Serial would not have counted this block's traffic
                // (aggregate or per-site); keep the unconditional
                // useful bytes and compaction accumulators only.
                stats = before;
                stats.usefulBytes += dUsefulBytes;
                if (options.siteStats)
                    siteTrafficDense = std::move(beforeSites);
            } else {
                measured++;
            }
        }

        for (auto &[key, cls] : classes)
            cls.seen = 0;
        for (int64_t block = 0; block < geom.totalBlocks; block++) {
            ClassInfo &cls = classes[keyOf[block]];
            const int64_t ordinal = cls.seen++;
            if (isProbeMember(ordinal, cls.members))
                continue;
            const bool measure = block % sampleStride == 0;
            applyDelta(cls.delta, measure);
            stats.classedBlocks++;
            if (measure)
                measured++;
        }
        return true;
    }

    //
    // Launch-time resolution
    //

    /** Compute per-level static sizes (max over the level's patterns). */
    void
    resolveLevels()
    {
        const int levels = prog.numLevels();
        levelSizes.assign(levels, 1);
        levelDynamic.assign(levels, false);
        for (const auto &[pattern, level] : collectPatterns(prog.root())) {
            if (sizeKnownAtLaunchLocal(pattern->size)) {
                const int64_t s = asIndex(evalExpr(pattern->size, ctx));
                levelSizes[level] = std::max(levelSizes[level], s);
            } else {
                levelDynamic[level] = true;
            }
        }
        for (int lv = 0; lv < levels; lv++) {
            if (levelDynamic[lv]) {
                NPP_ASSERT(spec.mapping.levels[lv].span.kind ==
                               SpanKind::All,
                           "dynamic level {} must be span(all)", lv);
                // Keep the block's lanes: geometry must not trim the
                // block size to the placeholder static size.
                levelSizes[lv] = std::max<int64_t>(
                    levelSizes[lv], spec.mapping.levels[lv].blockSize);
            }
        }
        if (options.sharded()) {
            NPP_ASSERT(!levelDynamic[0],
                       "cannot shard a dynamic root domain");
            const int64_t full = levelSizes[0];
            const int64_t hi = options.rootShardHi < 0
                                   ? full
                                   : std::min(options.rootShardHi, full);
            shardLo = std::min(std::max<int64_t>(options.rootShardLo, 0),
                               hi);
            NPP_ASSERT(hi > shardLo,
                       "empty root shard [{}, {}) of domain {}",
                       options.rootShardLo, options.rootShardHi, full);
            shardSize = hi - shardLo;
            // Geometry, classing, and local layouts all see the shard
            // as this device's whole root domain.
            levelSizes[0] = shardSize;
        }
    }

    bool
    sizeKnownAtLaunchLocal(const ExprRef &size) const
    {
        bool known = true;
        walkExpr(size, [&](const Expr &e) {
            if (e.kind == ExprKind::Read)
                known = false;
            if (e.kind == ExprKind::Var &&
                prog.var(e.varId).role != VarRole::ScalarParam) {
                known = false;
            }
        });
        return known;
    }

    /** Warp tiling of the block (x varies fastest within a warp). */
    void
    prepareWarpShape()
    {
        for (int d = 0; d < 4; d++)
            dimBlock[d] = 1;
        for (const auto &g : geom.levels)
            dimBlock[g.dim] = g.blockSize;

        int64_t remaining = device.warpSize;
        for (int d = 0; d < 4; d++) {
            warpShape[d] = std::max<int64_t>(
                1, std::min(dimBlock[d], remaining));
            remaining = std::max<int64_t>(1, remaining / warpShape[d]);
            tilesPerDim[d] = ceilDiv(dimBlock[d], warpShape[d]);
        }
        tilesPerBlock = 1;
        for (int d = 0; d < 4; d++)
            tilesPerBlock *= tilesPerDim[d];

        for (int d = 0; d < 4; d++) {
            laneCoord[d] = -1; // unbound
        }
        levelOfDim[0] = levelOfDim[1] = levelOfDim[2] = levelOfDim[3] = -1;
        for (size_t lv = 0; lv < geom.levels.size(); lv++)
            levelOfDim[geom.levels[lv].dim] = static_cast<int>(lv);
        // Per-dim strides of the linear warp-tile / lane-in-warp ids,
        // fixed per launch, for bindLane's incremental rebind path.
        int64_t tStride = 1, lStride = 1;
        for (int d = 0; d < 4; d++) {
            tileStrideOfDim[d] = tStride;
            tStride *= tilesPerDim[d];
            laneStrideOfDim[d] = lStride;
            lStride *= warpShape[d];
        }
        recomputeFactors();
    }

    /** Prealloc plans: storage and outer-domain shape. */
    void
    prepareLocals()
    {
        for (const auto &plan : spec.locals) {
            LocalState state;
            state.plan = &plan;
            // Outer domain: product of static level sizes above the
            // defining level (the "entire outer pattern" of Section V-A).
            state.outerTotal = 1;
            for (int lv = 0; lv < plan.definingLevel; lv++)
                state.outerTotal *= std::max<int64_t>(levelSizes[lv], 1);
            locals[plan.varId] = std::move(state);
        }
    }

    //
    // Warp bookkeeping
    //

    void
    recomputeFactors()
    {
        double unboundLanes = 1.0;
        double warpsIssuing = 1.0;
        for (int d = 0; d < 4; d++) {
            if (laneCoord[d] < 0 && dimBlock[d] > 1) {
                unboundLanes *= static_cast<double>(dimBlock[d]);
                warpsIssuing *= static_cast<double>(tilesPerDim[d]);
            }
        }
        curOpFactor = unboundLanes / device.warpSize;
        probe.warpMultiplier = warpsIssuing;
        // How many sequential lane visits make up one warp access: the
        // warp-shape extents of the bound dimensions.
        int visits = 1;
        for (int d = 0; d < 4; d++) {
            if (laneCoord[d] >= 0 && dimBlock[d] > 1)
                visits *= static_cast<int>(warpShape[d]);
        }
        probe.laneVisitsPerGroup = visits;
        // Linear warp-tile id over bound dims (unbound contribute 0),
        // plus the lane's position within the warp.
        int64_t tile = 0;
        int64_t stride = 1;
        int64_t lane = 0;
        int64_t laneStride = 1;
        for (int d = 0; d < 4; d++) {
            const int64_t coord = laneCoord[d] < 0 ? 0 : laneCoord[d];
            tile += (coord / warpShape[d]) * stride;
            stride *= tilesPerDim[d];
            lane += (coord % warpShape[d]) * laneStride;
            laneStride *= warpShape[d];
        }
        // Block-local: all grouping state is flushed at finishBlock, so
        // the block id would only widen the key.
        probe.warpTile = tile;
        probe.laneInWarp = static_cast<int>(lane);
    }

    /** Update the iteration signature (and the probe's grouping key). */
    void
    setSig(uint64_t value)
    {
        curSig = value;
        probe.sig = value;
    }

    void
    flushOps(bool measure = true)
    {
        const uint64_t delta = ctx.opCount - lastOpCount;
        lastOpCount = ctx.opCount;
        if (measure && probe.countTraffic)
            stats.warpInstructions += delta * std::max(curOpFactor, 0.03125);
    }

    void
    bindLane(int dim, int64_t lane)
    {
        flushOps();
        const int64_t old = laneCoord[dim];
        laneCoord[dim] = lane;
        if (old < 0) {
            recomputeFactors();
            return;
        }
        // Rebinding an already-bound dim (the lane loop's steady state):
        // the bound/unbound factors are unchanged, only this dim's
        // contribution to the warp-tile and lane-in-warp ids moves.
        const int64_t ws = warpShape[dim];
        probe.warpTile += (lane / ws - old / ws) * tileStrideOfDim[dim];
        probe.laneInWarp += static_cast<int>(
            (lane % ws - old % ws) * laneStrideOfDim[dim]);
    }

    void
    unbindLane(int dim)
    {
        flushOps();
        laneCoord[dim] = -1;
        recomputeFactors();
    }

    void
    decodeBlock(int64_t block)
    {
        blockLinear = block;
        for (size_t lv = 0; lv < geom.levels.size(); lv++) {
            blockCoord[lv] = block % geom.levels[lv].blocks;
            block /= geom.levels[lv].blocks;
        }
    }

    //
    // Pattern execution
    //

    struct YieldTarget
    {
        enum class Kind { RootOut, LocalArray, None } kind = Kind::None;
        int var = -1;
    };

    void
    execPattern(const Pattern &p, int lv, bool isRoot, int resultVar = -1,
                int countVar = -1)
    {
        const auto &g = geom.levels[lv];
        // The root shard's coverage is computed in shard-local
        // coordinates (geometry was built from the shard size) and its
        // indices are offset to true root-domain positions below.
        const bool rootShard = isRoot && shardSize >= 0;
        const int64_t size =
            rootShard ? shardSize : asIndex(evalExpr(p.size, ctx));
        const int64_t rootOff = rootShard ? shardLo : 0;
        const int64_t b = blockCoord[lv];

        // Coverage of this block at this level.
        int64_t lo = 0, hi = size;
        switch (g.span.kind) {
          case SpanKind::One:
            lo = b * g.blockSize;
            hi = std::min(size, lo + g.blockSize);
            break;
          case SpanKind::N:
            lo = b * g.blockSize * g.span.factor;
            hi = std::min(size, lo + g.blockSize * g.span.factor);
            break;
          case SpanKind::All:
            lo = 0;
            hi = size;
            break;
          case SpanKind::Split: {
            const int64_t seg = ceilDiv(size, g.blocks);
            lo = b * seg;
            hi = std::min(size, lo + seg);
            break;
          }
        }

        double acc = 0.0;
        const bool isReduce = p.kind == PatternKind::Reduce;
        if (isReduce)
            acc = combinerIdentity(p.combiner);

        // A nested groupBy's local is seeded with the combiner identity
        // before accumulation, like the root groupBy's output memset
        // (initialization traffic is not probed for either).
        if (!isRoot && p.kind == PatternKind::GroupBy) {
            MemProbe *save = ctx.probe;
            ctx.probe = nullptr;
            for (int64_t k = 0; k < ctx.arrays[resultVar].size; k++) {
                storeArray(p.site, resultVar, k,
                           combinerIdentity(p.combiner), ctx);
            }
            ctx.probe = save;
        }

        // Nested filter: survivors compact into the local's prefix.
        int64_t localCursor = 0;

        const int64_t lanes = std::max<int64_t>(g.blockSize, 1);
        const uint64_t sigSave = curSig;
        // The dim is rebound per visit (cheap incremental path) and
        // unbound once after the sweep: between two visits of this loop
        // no ops accrue and no accesses are probed, so deferring the
        // unbind is observationally identical to unbinding every visit.
        bool laneBound = false;
        for (int64_t base = lo, k = 0; base < hi;
             base += lanes, k++) {
            setSig(sigSave * 1000003ull + static_cast<uint64_t>(k) + 1);
            for (int64_t t = 0; t < lanes && base + t < hi; t++) {
                const int64_t idx = base + t + rootOff;
                bindLane(g.dim, t % g.blockSize);
                laneBound = true;
                ctx.scalars[p.indexVar] = static_cast<double>(idx);
                curLevelIndex[lv] = idx;

                runStmts(p.body, lv);

                switch (p.kind) {
                  case PatternKind::Map:
                  case PatternKind::ZipWith:
                    if (isRoot) {
                        storeArray(p.site, prog.rootOutput(), idx,
                                   evalExpr(p.yield, ctx), ctx);
                    } else {
                        emitLocalElement(resultVar, p, idx);
                    }
                    break;
                  case PatternKind::Reduce:
                    acc = applyOp(p.combiner, acc,
                                  evalExpr(p.yield, ctx));
                    break;
                  case PatternKind::Foreach:
                    break;
                  case PatternKind::Filter:
                    if (evalExpr(p.filterPred, ctx) != 0.0) {
                        if (isRoot) {
                            storeArray(p.site, prog.rootOutput(),
                                       filterCursor++,
                                       evalExpr(p.yield, ctx), ctx);
                        } else {
                            storeArray(p.site, resultVar, localCursor++,
                                       evalExpr(p.yield, ctx), ctx);
                        }
                    }
                    break;
                  case PatternKind::GroupBy: {
                    const int64_t key =
                        asIndex(evalExpr(p.key, ctx));
                    const int out = isRoot ? prog.rootOutput() : resultVar;
                    NPP_ASSERT(key >= 0 && key < ctx.arrays[out].size,
                               "groupBy key {} out of range", key);
                    const double prev = loadArray(p.site, out, key, ctx);
                    storeArray(p.site, out, key,
                               applyOp(p.combiner, prev,
                                       evalExpr(p.yield, ctx)),
                               ctx);
                    break;
                  }
                }
            }
        }
        if (laneBound)
            unbindLane(g.dim);
        setSig(sigSave);

        if (isReduce)
            finishReduce(p, lv, isRoot, resultVar, acc);

        if (!isRoot && p.kind == PatternKind::Filter) {
            NPP_ASSERT(countVar >= 0, "nested filter without count var");
            ctx.scalars[countVar] = static_cast<double>(localCursor);
            chargeCompaction(lv, size, localCursor);
        }
    }

    /**
     * Nested-filter compaction costs: the in-kernel count/scan machinery
     * (a block-wide exclusive scan of the keep flags, same shared-memory
     * tree shape as the reduce combine) plus the accumulators for the
     * analytic scatter finalize step. The finalize totals accrue on every
     * block — each outer iteration executes functionally exactly once —
     * so they are whole-grid exact and are never extrapolated.
     */
    void
    chargeCompaction(int lv, int64_t size, int64_t kept)
    {
        const auto &g = geom.levels[lv];
        if (g.blockSize > 1 && probe.countTraffic) {
            const double warpsPerPass =
                std::max(1.0, static_cast<double>(geom.threadsPerBlock) /
                                  device.warpSize);
            const double perVisit =
                1.0 / std::max(boundLaneProduct(), 1.0);
            stats.smemAccesses += 2.0 * warpsPerPass * perVisit;
            stats.syncs += (log2i(g.blockSize) + 1.0) * perVisit;
            stats.warpInstructions +=
                log2i(g.blockSize) * warpsPerPass * perVisit;
        }
        compactionElems += size;
        compactionKept += kept;
        compactionChunks +=
            ceilDiv(size, std::max<int64_t>(g.blockSize, 1));
    }

    /** Store one nested-map element into its (pre)allocated local. */
    void
    emitLocalElement(int resultVar, const Pattern &p, int64_t idx)
    {
        NPP_ASSERT(resultVar >= 0, "nested map without result var");
        storeArray(p.site, resultVar, idx, evalExpr(p.yield, ctx), ctx);
    }

    void
    finishReduce(const Pattern &p, int lv, bool isRoot, int resultVar,
                 double acc)
    {
        const auto &g = geom.levels[lv];

        // Cost of the shared-memory tree combine across this level's
        // lanes (charged warp-granular, once per block-wide pass).
        if (g.blockSize > 1 && probe.countTraffic) {
            const double boundLanes = boundLaneProduct();
            const double warpsPerPass =
                std::max(1.0, static_cast<double>(geom.threadsPerBlock) /
                                  device.warpSize);
            const double perVisit = 1.0 / std::max(boundLanes, 1.0);
            stats.smemAccesses += 2.0 * warpsPerPass * perVisit;
            stats.syncs +=
                (log2i(g.blockSize) + 1.0) * perVisit;
            stats.warpInstructions +=
                log2i(g.blockSize) * warpsPerPass * perVisit;
        }

        if (g.span.kind == SpanKind::Split) {
            // Partial per (enclosing ids, segment); combined after the
            // block loop, matching the combiner kernel.
            const uint64_t key = outerKey(lv);
            auto &slot = splitPartials[&p][key];
            if (slot.count == 0)
                slot.value = combinerIdentity(p.combiner);
            slot.value = applyOp(p.combiner, slot.value, acc);
            slot.count++;
            if (isRoot) {
                deferredRootReduce = &p;
            } else {
                // Defer the enclosing yield: remember the binding site.
                deferredNested = &p;
                deferredNestedVar = resultVar;
                deferNestedPending = true;
                ctx.scalars[resultVar] = slot.value; // partial (unused)
            }
            stats.hasCombiner = true;
            return;
        }

        if (isRoot) {
            if (blockLinear == 0)
                storeArray(p.site, prog.rootOutput(), 0, acc, ctx);
        } else {
            ctx.scalars[resultVar] = acc;
        }
    }

    double
    boundLaneProduct() const
    {
        double lanes = 1.0;
        for (int d = 0; d < 4; d++) {
            if (laneCoord[d] >= 0 && dimBlock[d] > 1)
                lanes *= static_cast<double>(dimBlock[d]);
        }
        return lanes;
    }

    /** Key identifying the current enclosing index tuple above lv. */
    uint64_t
    outerKey(int lv) const
    {
        uint64_t key = 0xcbf29ce484222325ull;
        for (int i = 0; i < lv; i++) {
            key ^= static_cast<uint64_t>(curLevelIndex[i]) + 1;
            key *= 0x100000001b3ull;
        }
        return key;
    }

    /** Linear index of the enclosing tuple (for local-array layout). */
    int64_t
    outerLinear(int defLevel) const
    {
        int64_t linear = 0;
        for (int lv = 0; lv < defLevel; lv++)
            linear = linear * std::max<int64_t>(levelSizes[lv], 1) +
                     curLevelIndex[lv];
        return linear;
    }

    //
    // Statements
    //

    void
    runStmts(const std::vector<StmtPtr> &stmts, int lv)
    {
        for (const auto &s : stmts)
            runStmt(*s, lv);
    }

    /** The consolidated path executes prefix/suffix slices of the root
     *  body as raw-pointer lists (they alias the owning vector). */
    void
    runStmtList(const std::vector<const Stmt *> &stmts, int lv)
    {
        for (const Stmt *s : stmts)
            runStmt(*s, lv);
    }

    void
    runStmt(const Stmt &s, int lv)
    {
        switch (s.kind) {
          case StmtKind::Let:
          case StmtKind::Assign:
            ctx.scalars[s.var] = evalExpr(s.value, ctx);
            break;
          case StmtKind::Store:
            storeArray(s.site, s.array,
                       asIndex(evalExpr(s.index, ctx)),
                       evalExpr(s.value, ctx), ctx);
            break;
          case StmtKind::If:
            if (evalExpr(s.cond, ctx) != 0.0)
                runStmts(s.body, lv);
            else
                runStmts(s.elseBody, lv);
            break;
          case StmtKind::SeqLoop: {
            const int64_t trip = asIndex(evalExpr(s.trip, ctx));
            const uint64_t sigSave = curSig;
            const uint64_t ops0 = ctx.opCount;
            for (int64_t k = 0; k < trip; k++) {
                ctx.scalars[s.var] = static_cast<double>(k);
                if (s.cond && evalExpr(s.cond, ctx) != 0.0)
                    break;
                setSig(sigSave * 16777619ull +
                       static_cast<uint64_t>(k) + 1);
                runStmts(s.body, lv);
            }
            setSig(sigSave);
            recordDivergence(s.site, ctx.opCount - ops0);
            break;
          }
          case StmtKind::Nested:
            execNested(s, lv + 1);
            break;
        }
    }

    void
    execNested(const Stmt &s, int lv)
    {
        const Pattern &p = *s.pattern;
        if (s.var >= 0 && prog.var(s.var).role == VarRole::ArrayLocal)
            bindLocalArray(s, p);

        // A nested pattern that runs sequentially inside the thread is a
        // divergence site when its trip count is data dependent: the
        // warp's lanes wait for the longest one.
        const bool sequentialInThread = geom.levels[lv].blockSize == 1;
        const uint64_t ops0 = ctx.opCount;
        execPattern(p, lv, /*isRoot=*/false, s.var, s.countVar);
        if (sequentialInThread)
            recordDivergence(s.site, ctx.opCount - ops0);

        // Inner parallel map results are consumed block-wide; the
        // generated code synchronizes after producing them.
        if ((p.kind == PatternKind::Map ||
             p.kind == PatternKind::ZipWith) &&
            geom.levels[lv].blockSize > 1 && probe.countTraffic) {
            stats.syncs += 1.0 / std::max(boundLaneProduct(), 1.0);
        }
    }

    void
    bindLocalArray(const Stmt &s, const Pattern &p)
    {
        auto it = locals.find(s.var);
        NPP_ASSERT(it != locals.end(), "array local {} without plan",
                   prog.var(s.var).name);
        LocalState &state = it->second;
        const LocalArrayPlan &plan = *state.plan;

        // Allocation size: the static upper bound for a filter (only a
        // prefix is valid per outer iteration) and the key domain for a
        // groupBy; the index-domain size otherwise.
        const int64_t innerSize = asIndex(evalExpr(p.allocSize(), ctx));
        if (static_cast<int64_t>(state.storage.size()) < innerSize)
            state.storage.resize(innerSize);

        ArraySlot slot;
        slot.data = state.storage.data();
        slot.size = innerSize;
        slot.physSize = static_cast<int64_t>(state.storage.size());
        slot.offset = 0;
        slot.stride = 1;
        slot.elemBytes = scalarBytes(prog.var(s.var).kind);

        const int64_t base = static_cast<int64_t>(s.var) << 40;
        const int64_t outer = outerLinear(plan.definingLevel);
        if (plan.mode == LocalArrayPlan::Mode::ThreadMalloc) {
            // Device-heap blocks are scattered: pad each thread's block
            // so no two threads share a transaction segment.
            const int64_t padded =
                roundUp(innerSize + device.transactionBytes / 8, 16);
            slot.addrBase = base + outer * padded;
            slot.addrStride = 1;
            if (probe.countTraffic)
                stats.mallocs += 1;
        } else if (plan.layout == LocalArrayPlan::Layout::Contiguous) {
            slot.addrBase = base + outer * innerSize; // Fig 11(a)
            slot.addrStride = 1;
        } else {
            slot.addrBase = base + outer; // Fig 11(b)
            slot.addrStride = state.outerTotal;
        }
        ctx.arrays[s.var] = slot;
    }

    /** Record one lane's sequential-loop work for divergence accounting
     *  (keyed by site and warp; settled per block). */
    void
    recordDivergence(int64_t site, uint64_t ops)
    {
        if (!probe.countTraffic)
            return;
        // Group by iteration signature too: only lanes executing the
        // same iteration pad each other out; a thread's own sequential
        // iterations do not. The key is exact — (site, tile) and
        // signature compared verbatim — so distinct warps can never
        // alias into one accumulator the way a hashed key could.
        const DivKey key{static_cast<uint64_t>(site) * tilesPerBlock +
                             static_cast<uint64_t>(probe.warpTile),
                         probe.sig};
        DivAcc &acc = divergence[key];
        acc.sum += static_cast<double>(ops);
        acc.peak = std::max(acc.peak, static_cast<double>(ops));
        acc.count++;
    }

    /** SIMD semantics: the warp executes max-lane work, not mean-lane
     *  work; charge the difference. Accumulation runs in sorted key
     *  order so the double sum is identical across stdlib hash-table
     *  implementations. */
    void
    settleDivergence()
    {
        if (divergence.empty())
            return;
        std::vector<std::pair<DivKey, const DivAcc *>> entries;
        entries.reserve(divergence.size());
        for (const auto &[key, acc] : divergence)
            entries.emplace_back(key, &acc);
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first.siteTile != b.first.siteTile)
                          return a.first.siteTile < b.first.siteTile;
                      return a.first.sig < b.first.sig;
                  });
        for (const auto &[key, acc] : entries) {
            stats.warpInstructions +=
                (acc->peak * acc->count - acc->sum) / device.warpSize;
        }
        divergence.clear();
    }

    //
    // Split combining (the separate combiner kernel)
    //

    void
    finishSplit()
    {
        if (splitPartials.empty())
            return;

        // Root-map-with-split-inner-reduce: re-run the root level
        // sequentially, substituting combined totals for the reduce and
        // performing the deferred output stores (functionally the
        // combiner kernel; its traffic is charged analytically below).
        probe.countTraffic = false;
        if (deferredRootReduce) {
            const Pattern &p = *deferredRootReduce;
            const auto &parts = splitPartials[&p];
            double total = combinerIdentity(p.combiner);
            int64_t k = 0;
            for (const auto &[key, slot] : parts) {
                total = applyOp(p.combiner, total, slot.value);
                k = std::max<int64_t>(k, slot.count);
            }
            ctx.probe = nullptr;
            storeArray(p.site, prog.rootOutput(), 0, total, ctx);
            ctx.probe = &probe;
            stats.combinerTransactions += parts.size() + 1;
            stats.combinerOps += parts.size();
            stats.combinerThreads = 1;
        } else if (deferNestedPending) {
            replayRootWithTotals();
        }
        probe.countTraffic = true;
    }

    /** Re-run the root pattern sequentially using the combined reduce
     *  totals (deferred yield stores). */
    void
    replayRootWithTotals()
    {
        const Pattern &root = prog.root();
        NPP_ASSERT(root.kind == PatternKind::Map ||
                       root.kind == PatternKind::ZipWith,
                   "split of a nested reduce requires a map root");
        combinerReplay = true;
        ctx.probe = nullptr;
        // Under a root shard the split partials exist only for this
        // shard's outer tuples; replay exactly those.
        const int64_t size = shardSize >= 0
                                 ? shardSize
                                 : asIndex(evalExpr(root.size, ctx));
        const int64_t off = shardSize >= 0 ? shardLo : 0;
        for (int64_t local = 0; local < size; local++) {
            const int64_t i = off + local;
            ctx.scalars[root.indexVar] = static_cast<double>(i);
            curLevelIndex[0] = i;
            replayStmts(root.body, 1);
            storeArray(root.site, prog.rootOutput(), i,
                       evalExpr(root.yield, ctx), ctx);
        }
        ctx.probe = &probe;
        combinerReplay = false;

        // Combiner kernel traffic: read outer*k partials, write outer.
        const Pattern &p = *deferredNested;
        const auto &parts = splitPartials[&p];
        double totalPartials = 0;
        for (const auto &[key, slot] : parts)
            totalPartials += slot.count;
        stats.combinerTransactions +=
            ceilDiv(static_cast<int64_t>(totalPartials) * 8, 128) +
            ceilDiv(size * 8, 128);
        stats.combinerOps += totalPartials;
        stats.combinerThreads = size;
    }

    /** Statement replay for the combiner pass: nested split reduces read
     *  their combined totals; everything else re-executes silently. */
    void
    replayStmts(const std::vector<StmtPtr> &stmts, int lv)
    {
        for (const auto &s : stmts) {
            switch (s->kind) {
              case StmtKind::Let:
              case StmtKind::Assign:
                ctx.scalars[s->var] = evalExpr(s->value, ctx);
                break;
              case StmtKind::Store:
                // Effects already happened in the main kernel.
                break;
              case StmtKind::If:
                if (evalExpr(s->cond, ctx) != 0.0)
                    replayStmts(s->body, lv);
                else
                    replayStmts(s->elseBody, lv);
                break;
              case StmtKind::SeqLoop: {
                const int64_t trip = asIndex(evalExpr(s->trip, ctx));
                for (int64_t k = 0; k < trip; k++) {
                    ctx.scalars[s->var] = static_cast<double>(k);
                    if (s->cond && evalExpr(s->cond, ctx) != 0.0)
                        break;
                    replayStmts(s->body, lv);
                }
                break;
              }
              case StmtKind::Nested: {
                const Pattern &p = *s->pattern;
                if (geom.levels[lv].span.kind == SpanKind::Split &&
                    p.kind == PatternKind::Reduce) {
                    const auto &parts = splitPartials.at(&p);
                    const uint64_t key = outerKey(lv);
                    auto it = parts.find(key);
                    NPP_ASSERT(it != parts.end(),
                               "missing split partial");
                    ctx.scalars[s->var] = it->second.value;
                } else {
                    // Non-split nested work re-executes sequentially.
                    replayNestedSequential(*s, lv);
                }
                break;
              }
            }
        }
    }

    void
    replayNestedSequential(const Stmt &s, int lv)
    {
        const Pattern &p = *s.pattern;
        const int64_t size = asIndex(evalExpr(p.size, ctx));
        if (s.var >= 0 && prog.var(s.var).role == VarRole::ArrayLocal)
            bindLocalArray(s, p);
        if (p.kind == PatternKind::GroupBy) {
            for (int64_t k = 0; k < ctx.arrays[s.var].size; k++)
                storeArray(p.site, s.var, k,
                           combinerIdentity(p.combiner), ctx);
        }
        double acc = combinerIdentity(p.combiner);
        int64_t cursor = 0;
        for (int64_t i = 0; i < size; i++) {
            ctx.scalars[p.indexVar] = static_cast<double>(i);
            curLevelIndex[lv] = i;
            replayStmts(p.body, lv + 1);
            switch (p.kind) {
              case PatternKind::Reduce:
                acc = applyOp(p.combiner, acc, evalExpr(p.yield, ctx));
                break;
              case PatternKind::Filter:
                if (evalExpr(p.filterPred, ctx) != 0.0) {
                    storeArray(p.site, s.var, cursor++,
                               evalExpr(p.yield, ctx), ctx);
                }
                break;
              case PatternKind::GroupBy: {
                const int64_t key = asIndex(evalExpr(p.key, ctx));
                const double prev = loadArray(p.site, s.var, key, ctx);
                storeArray(p.site, s.var, key,
                           applyOp(p.combiner, prev,
                                   evalExpr(p.yield, ctx)),
                           ctx);
                break;
              }
              case PatternKind::Foreach:
                break;
              default:
                if (s.var >= 0)
                    storeArray(p.site, s.var, i, evalExpr(p.yield, ctx),
                               ctx);
                break;
            }
        }
        if (p.kind == PatternKind::Reduce)
            ctx.scalars[s.var] = acc;
        if (p.kind == PatternKind::Filter)
            ctx.scalars[s.countVar] = static_cast<double>(cursor);
    }

    void
    finishFilterCount()
    {
        if (prog.root().kind == PatternKind::Filter) {
            ctx.probe = nullptr;
            storeArray(prog.root().site, prog.countOutput(), 0,
                       static_cast<double>(filterCursor), ctx);
            ctx.probe = &probe;
        }
    }

    /**
     * Analytic cost of the compaction finalize step for nested-filter
     * outputs (an extra kernel in the plan, mirroring the split-combiner
     * accounting): one thread per candidate element reads the per-chunk
     * counts, exclusive-scans them, and scatters each survivor from its
     * chunk-local slot to the compacted prefix.
     */
    void
    finishCompaction()
    {
        if (compactionElems == 0)
            return;
        stats.hasCompaction = true;
        stats.compactionTransactions +=
            ceilDiv(compactionChunks * 8, 128) +
            2 * ceilDiv(compactionKept * 8, 128);
        stats.compactionOps += static_cast<double>(compactionElems);
        stats.compactionThreads = compactionElems;
    }

    //
    // Consolidation (the bin-build prologue + queue finalize)
    //

    /** Slice the root body for the consolidated path: scalar prologue
     *  statements before the single nested pattern, the nested statement
     *  itself, and the suffix after it. Shapes that cannot be sliced
     *  this way are rejected by consolidationEligibility at compile
     *  time; these asserts are the executor's backstop. */
    void
    prepareConsolidation()
    {
        consNested = nullptr;
        consPrefix.clear();
        consSuffix.clear();
        consPrefixVars.clear();
        for (const auto &s : prog.root().body) {
            if (s->kind == StmtKind::Nested) {
                NPP_ASSERT(!consNested,
                           "consolidation requires a single nested "
                           "pattern in the root body");
                consNested = s.get();
                continue;
            }
            if (!consNested) {
                NPP_ASSERT(s->kind == StmtKind::Let ||
                               s->kind == StmtKind::Assign,
                           "consolidated parent prologue must be scalar "
                           "lets");
                consPrefix.push_back(s.get());
                if (std::find(consPrefixVars.begin(), consPrefixVars.end(),
                              s->var) == consPrefixVars.end())
                    consPrefixVars.push_back(s->var);
            } else {
                consSuffix.push_back(s.get());
            }
        }
        NPP_ASSERT(consNested,
                   "consolidated spec without a nested pattern");
    }

    /**
     * Analytic cost of the queue round trip (an extra bin-build kernel
     * in the plan, mirroring the compaction finalize accounting): one
     * thread per parent gathers the extent and scan-offsets it, then
     * writes one 8-byte entry per child; consumption reads every entry
     * back. The accumulators accrue on every block, so the totals are
     * whole-grid exact and are never extrapolated.
     */
    void
    finishConsolidation()
    {
        if (!spec.consolidation.enabled)
            return;
        stats.hasConsolidation = true;
        stats.consolidationGroups = consGroups;
        stats.consolidationParents = consParents;
        stats.consolidationEntries = consEntries;
        stats.consolidationWaves = consWaves;
        const int64_t L =
            std::max<int64_t>(geom.levels[0].blockSize, 1);
        stats.binFill =
            consWaves > 0 ? static_cast<double>(consEntries) /
                                static_cast<double>(consWaves * L)
                          : 1.0;
        stats.queueBuildTransactions +=
            2.0 * ceilDiv(consEntries * 8, 128) +
            ceilDiv(consParents * 8, 128);
        stats.queueBuildOps +=
            static_cast<double>(consEntries + consParents);
        stats.queueBuildThreads = std::max<int64_t>(consParents, 1);
    }

    //
    // State
    //

    struct LocalState
    {
        const LocalArrayPlan *plan = nullptr;
        std::vector<double> storage;
        int64_t outerTotal = 1;
    };

    struct Partial
    {
        double value = 0.0;
        int64_t count = 0;
    };

    /** One privatized output buffer (metricsOnly mode). */
    struct PrivateCopy
    {
        const double *src = nullptr;
        std::vector<double> copy;
    };

    const KernelSpec &spec;
    const Program &prog;
    const DeviceConfig &device;
    const ExecOptions &options;

    EvalCtx ctx;
    KernelStats stats;
    CoalesceProbe probe;
    /** Per-site traffic while running (siteStats mode), direct-indexed
     *  by trace-site id; nonzero slots are exported site-ordered into
     *  stats.siteTraffic at the end of run(). */
    std::vector<SiteTraffic> siteTrafficDense;
    /** Dense trace-site id bound: maxTraceSite(root) + 1. */
    int numSites = 0;
    /** spec.prefetchedSites translated to stable readSite ids for the
     *  probe's key space. */
    std::unordered_set<int64_t> prefetchSiteIds;
    LaunchGeometry geom;

    std::vector<int64_t> levelSizes;
    std::vector<bool> levelDynamic;
    std::vector<std::vector<int64_t>> levelPatSizes;
    std::deque<PrivateCopy> privateCopies;

    int64_t dimBlock[4] = {1, 1, 1, 1};
    int64_t warpShape[4] = {1, 1, 1, 1};
    int64_t tilesPerDim[4] = {1, 1, 1, 1};
    int64_t tileStrideOfDim[4] = {1, 1, 1, 1};
    int64_t laneStrideOfDim[4] = {1, 1, 1, 1};
    int64_t tilesPerBlock = 1;
    int64_t laneCoord[4] = {-1, -1, -1, -1};
    int levelOfDim[4] = {-1, -1, -1, -1};

    int64_t blockLinear = 0;
    int64_t blockCoord[4] = {0, 0, 0, 0};
    int64_t curLevelIndex[4] = {0, 0, 0, 0};

    /** Root-domain shard (ExecOptions::rootShard*), resolved against the
     *  launch-known root size; shardSize < 0 means unsharded. */
    int64_t shardLo = 0;
    int64_t shardSize = -1;

    uint64_t curSig = 0;
    uint64_t lastOpCount = 0;
    double curOpFactor = 1.0;

    struct DivAcc
    {
        double sum = 0.0;
        double peak = 0.0;
        int count = 0;
    };

    /** Exact divergence-accumulator key: dense (site, tile) id plus the
     *  full iteration signature. */
    struct DivKey
    {
        uint64_t siteTile = 0;
        uint64_t sig = 0;

        bool operator==(const DivKey &o) const
        {
            return siteTile == o.siteTile && sig == o.sig;
        }
    };

    struct DivKeyHash
    {
        size_t operator()(const DivKey &k) const
        {
            uint64_t h = k.sig + 0x9e3779b97f4a7c15ULL * (k.siteTile + 1);
            h ^= h >> 33;
            h *= 0xff51afd7ed558ccdULL;
            h ^= h >> 29;
            return static_cast<size_t>(h);
        }
    };

    std::unordered_map<DivKey, DivAcc, DivKeyHash> divergence;

    std::unordered_map<int, LocalState> locals;
    std::unordered_map<const Pattern *,
                       std::unordered_map<uint64_t, Partial>>
        splitPartials;
    const Pattern *deferredRootReduce = nullptr;
    const Pattern *deferredNested = nullptr;
    int deferredNestedVar = -1;
    bool deferNestedPending = false;
    bool combinerReplay = false;
    int64_t filterCursor = 0;
    int64_t compactionElems = 0;
    int64_t compactionKept = 0;
    int64_t compactionChunks = 0;
    int64_t divergedBlock = 0;

    /** Consolidated-path state: the sliced root body, per-group parent
     *  snapshots (reused across blocks), and the whole-grid queue
     *  accumulators. */
    const Stmt *consNested = nullptr;
    std::vector<const Stmt *> consPrefix;
    std::vector<const Stmt *> consSuffix;
    std::vector<int> consPrefixVars;
    std::vector<int64_t> consParentExtent;
    std::vector<double> consParentLets;
    std::vector<double> consAcc;
    int64_t consGroups = 0;
    int64_t consParents = 0;
    int64_t consEntries = 0;
    int64_t consWaves = 0;
};

} // namespace

KernelStats
executeOnDevice(const KernelSpec &spec, const Bindings &args,
                const DeviceConfig &device, const ExecOptions &options)
{
    NPP_TRACE_SCOPE("sim.execute");
    DeviceExecutor exec(spec, args, device, options);
    KernelStats stats = exec.run();
    NPP_TRACE_COUNT("sim.blocks", static_cast<double>(stats.totalBlocks));
    NPP_TRACE_COUNT("sim.classed_blocks",
                    static_cast<double>(stats.classedBlocks));
    if (options.blockClasses && options.metricsOnly &&
        !stats.classReason.empty())
        NPP_TRACE_COUNT("sim.class_fallbacks", 1);
    return stats;
}

} // namespace npp
