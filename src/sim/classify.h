/**
 * @file
 * Legality analysis for block-equivalence-class simulation. Two thread
 * blocks of a launch are equivalent when their interpreted behavior —
 * instruction counts, shared-memory traffic, and coalesced-transaction
 * counts — is identical up to the affine contribution of the block index
 * to every memory address. The executor then simulates one representative
 * per class and replicates its per-block metric deltas across the class.
 *
 * The analysis is conservative. A launch is classable when:
 *
 *  1. Control flow is block-uniform: every pattern size and SeqLoop trip
 *     is launch-known, and every If/Select condition and And/Or
 *     short-circuit operand is free of parallel indices, array reads, and
 *     mutable locals (its value, and hence branch choice and op count, is
 *     identical for corresponding lanes of any two blocks).
 *  2. Every array address is affine in the enclosing parallel indices
 *     with launch-known integral coefficients, and for every level with
 *     more than one block the per-block address shift
 *     (coefficient x block step x element bytes) is a multiple of the
 *     transaction size, so the segment-count of every warp access group
 *     is translation invariant.
 *  3. No Split spans (they carry cross-block reduce partials).
 *  4. Filter/GroupBy patterns are class-invariant. Both always run at a
 *     span-all level (they need a block-wide pass), so every block walks
 *     the same index range; what can still differ across blocks is the
 *     data. A nested filter classes when its predicate — and a groupBy
 *     when its key — is free of array reads, mutable locals, nested
 *     results, and indices of levels that are partitioned across blocks
 *     (span-all indices are fine: their level maps to a single block).
 *     Then every block drives the compaction cursor / key-bin addresses
 *     through the identical sequence, so kept counts, compaction traffic
 *     and the per-class metric deltas replicate exactly, and the filter's
 *     count var becomes a class-invariant scalar that may size inner
 *     patterns. Root filters never class (their output cursor threads
 *     through all blocks), and data-dependent predicates/keys fail with
 *     a reason naming the pattern — the executor then simulates every
 *     block exactly and surfaces the reason via KernelStats::classReason.
 *
 * Uniformity across corresponding lanes is what matters, not uniformity
 * within a block: control flow may depend on span-all indices (every
 * block diverges identically), just never on partitioned ones.
 *
 * Local arrays (prealloc or thread-malloc) participate: their simulated
 * device addresses are themselves affine in the enclosing indices, so the
 * layout contribution is folded into the per-level coefficients before
 * the alignment check.
 */

#ifndef NPP_SIM_CLASSIFY_H
#define NPP_SIM_CLASSIFY_H

#include <string>
#include <vector>

#include "analysis/target.h"
#include "codegen/plan.h"
#include "runtime/eval.h"

namespace npp {

/** Result of the classability analysis for one launch. */
struct BlockClassPlan
{
    bool classable = false;
    /** First disqualifying reason when !classable (diagnostics). */
    std::string reason;
};

/**
 * Analyze one launch. `geom` and `levelSizes` are the resolved launch
 * geometry; `ctx` supplies the actual scalar-param values (the analysis
 * folds coefficients against them, not against hints).
 */
BlockClassPlan analyzeBlockClasses(const KernelSpec &spec,
                                   const LaunchGeometry &geom,
                                   const std::vector<int64_t> &levelSizes,
                                   const EvalCtx &ctx,
                                   const DeviceConfig &device);

} // namespace npp

#endif // NPP_SIM_CLASSIFY_H
