/**
 * @file
 * The coalescing probe: groups the addresses that the lanes of one warp
 * issue for one static access site in one loop iteration, and counts the
 * distinct transaction-sized segments they touch — the memory-controller
 * behavior described in Section II that the whole mapping analysis is
 * built around.
 *
 * The executor visits the lanes of a warp one at a time (it simulates
 * parallel hardware with sequential loops), and lanes of the same warp
 * access a site at widely separated times when an outer-level lane loop
 * encloses an inner sweep. Warp accesses are therefore keyed by
 * (site, iteration signature, warp tile) and accumulated until the
 * expected number of lane visits arrives, at which point the group's
 * distinct segments are added to the transaction count.
 *
 * Segments are counted *relative to the group's minimum lane address*:
 * a group touching byte addresses A covers |{ floor((a - min A) / T) }|
 * transactions of size T. Relative counting makes every transaction
 * metric invariant under whole-block address translation — two blocks
 * whose access patterns differ only by a uniform shift charge identical
 * traffic regardless of how the shift sits against segment boundaries.
 * (An absolute model, where a unit-stride warp's count depends on
 * whether its base straddles a boundary, would make block-equivalence
 * classing sensitive to alignment accidents.)
 *
 * Groups live in an open-addressed structure-of-arrays table with exact
 * (signature, site, tile) keys and a preallocated flat lane-address slab
 * — no per-access heap allocation, no hashed-key collisions merging
 * unrelated groups, and a sort-free bitmap scan at charge time.
 */

#ifndef NPP_SIM_COALESCE_H
#define NPP_SIM_COALESCE_H

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "analysis/target.h"
#include "runtime/eval.h"
#include "sim/metrics.h"

namespace npp {

/**
 * MemProbe implementation used during block execution. The executor
 * maintains the grouping context:
 *
 *  - `sig`: hash of all loop counters (identical across the lanes of one
 *    iteration, distinct across iterations),
 *  - `warpTile`: id of the warp *within the current block* that the
 *    currently-bound lane coordinates fall into (all grouping state has
 *    per-block lifetime, so the block id would add nothing but key
 *    width),
 *  - `warpMultiplier`: number of hardware warps that issue this access
 *    (greater than 1 when unbound inner dimensions span several warps),
 *  - `laneVisitsPerGroup`: how many sequentially-simulated lane visits
 *    one warp access comprises (the product of warp-shape extents of the
 *    currently bound dimensions).
 */
class CoalesceProbe : public MemProbe
{
  public:
    CoalesceProbe(const DeviceConfig &device, KernelStats &stats)
        : device(device),
          stats(stats),
          txBytes(device.transactionBytes)
    {
        rehash(kDefaultCapacity);
    }

    ~CoalesceProbe() override { flushAll(); }

    /** Size the dense per-(site, tile, lane) tables for one launch. Must
     *  be called before the first block; ids outside the configured
     *  ranges are a bug in the caller. */
    void configure(int numSites, int64_t tilesPerBlock, int numArrayVars);

    /** @name Executor-maintained grouping context
     *  @{
     */
    uint64_t sig = 0;
    int64_t warpTile = 0;
    double warpMultiplier = 1.0;
    int laneVisitsPerGroup = 1;
    int laneInWarp = 0;
    /** Line-reuse model: when the resident working set fits in L1, a
     *  thread's back-to-back accesses within one transaction-sized line
     *  of its last miss are cache hits (sequential per-thread walks then
     *  cost coalesced-equivalent bandwidth; with too many resident
     *  threads the lines are evicted before reuse and every access pays
     *  a transaction). The line starts at the miss address — relative,
     *  like the segment model, so hits are translation-invariant. */
    bool lineReuse = false;
    /** @} */

    /** Trace-site ids served via shared-memory prefetch (derived from the
     *  KernelSpec's prefetched read expressions by the executor). */
    const std::unordered_set<int64_t> *prefetchedSites = nullptr;

    /** When false, accesses only count useful bytes (functional pass on
     *  unsampled blocks). */
    bool countTraffic = true;

    /** Optional per-trace-site attribution (ExecOptions::siteStats): the
     *  executor points this at a site-indexed vector (one slot per trace
     *  site) and the probe mirrors every traffic-counted byte and
     *  transaction into the access site's slot. Null when site stats are
     *  off (the common case) so the extra bookkeeping costs nothing. */
    std::vector<SiteTraffic> *siteTraffic = nullptr;

    void onAccess(int64_t site, int arrayVar, int64_t physIndex,
                  bool isWrite, int bytes) override;

    /** Flush all incomplete warp accesses (end of block), in (site,
     *  tile, signature) order so double accumulation is identical across
     *  stdlib implementations. */
    void flushAll();

    /** End-of-block accounting: flush incomplete groups, retire the
     *  line-reuse epoch, and charge the prefetch staging fills
     *  (coalesced, once per block). */
    void finishBlock();

  private:
    /** Upper bound on lane visits per group: the warp-shape extents of
     *  the bound dimensions multiply to at most the warp size. */
    static constexpr int kMaxLanes = 32;

    /** Initial group-table capacity (power of two; grows on demand and
     *  shrinks back after an outlier block so steady-state block scans
     *  stay short). */
    static constexpr size_t kDefaultCapacity = 1024;

    static constexpr uint64_t kEmptyKey = ~0ull;

    static uint64_t
    hashKey(uint64_t sig, uint64_t siteTile)
    {
        uint64_t h = sig + 0x9e3779b97f4a7c15ULL * (siteTile + 1);
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 29;
        return h;
    }

    /** Find the slot for (sig, siteTile), inserting an empty group if
     *  absent. Exact key comparison: distinct groups never merge. */
    size_t findOrInsert(uint64_t sigKey, uint64_t siteTile);

    void rehash(size_t newCap);
    void eraseSlot(size_t slot);

    /** Add a completed warp group's transactions to the kernel totals
     *  and, when attribution is on, to its site's slot. */
    void charge(size_t slot);

    /** Distinct segments of `n` addresses relative to their minimum. */
    int relativeSegments(const int64_t *addrs, int n, int64_t minAddr) const;

    const DeviceConfig &device;
    KernelStats &stats;
    const int64_t txBytes;

    /** @name Group table (SoA, open addressing, linear probing)
     *  Parallel arrays indexed by slot; `gKey` is the iteration
     *  signature and `gSiteTile` the dense site-and-tile id
     *  `site * tilesPerBlock + warpTile` (kEmptyKey there marks a free
     *  slot — site-tile ids are small, so unlike the signature hash they
     *  can never collide with the sentinel). `gAddr` is a flat slab of
     *  kMaxLanes distinct lane addresses per slot.
     *  @{
     */
    std::vector<uint64_t> gKey;
    std::vector<uint64_t> gSiteTile;
    std::vector<int32_t> gVisits;
    std::vector<int32_t> gCount;
    std::vector<double> gMult;
    std::vector<int64_t> gMin;
    std::vector<int64_t> gAddr;
    size_t capacity = 0;
    size_t mask = 0;
    size_t used = 0;
    /** @} */

    /** Direct-mapped slot cache over the group table, indexed by
     *  siteTile. The executor visits a warp's lanes back to back, so
     *  consecutive accesses overwhelmingly hit the same few groups;
     *  validating the cached slot's exact key skips the hash-and-probe.
     *  Stale entries are harmless: live groups are unique per
     *  (sig, siteTile), so a moved or erased group can never validate at
     *  its old slot. rehash() resets the entries only to keep the cached
     *  indices inside a possibly shrunken table. */
    static constexpr size_t kSlotCacheSize = 16;
    size_t slotCache[kSlotCacheSize] = {};

    /** Line-reuse state, dense per (site, tile, lane) and epoch-stamped
     *  so finishBlock invalidates it in O(1). */
    std::vector<int64_t> lineBase;
    std::vector<uint32_t> lineEpoch;
    uint32_t epoch = 1;
    int64_t tilesPerBlock = 1;
    int numSites = 0;

    /** Distinct byte addresses each prefetched array fetched this block;
     *  the staging fill is charged per array relative to its own minimum
     *  address at finishBlock (exact-address dedup is translation-safe,
     *  absolute-segment dedup would not be). */
    std::vector<std::unordered_set<int64_t>> prefetchAddrs;
    std::vector<int> prefetchTouched;
};

} // namespace npp

#endif // NPP_SIM_COALESCE_H
