/**
 * @file
 * The coalescing probe: groups the addresses that the lanes of one warp
 * issue for one static access site in one loop iteration, and counts the
 * distinct transaction-sized segments they touch — the memory-controller
 * behavior described in Section II that the whole mapping analysis is
 * built around.
 *
 * The executor visits the lanes of a warp one at a time (it simulates
 * parallel hardware with sequential loops), and lanes of the same warp
 * access a site at widely separated times when an outer-level lane loop
 * encloses an inner sweep. Warp accesses are therefore keyed by
 * (site, iteration signature, warp tile) and accumulated until the
 * expected number of lane visits arrives, at which point the group's
 * distinct segments are added to the transaction count.
 */

#ifndef NPP_SIM_COALESCE_H
#define NPP_SIM_COALESCE_H

#include <unordered_map>
#include <unordered_set>

#include "analysis/target.h"
#include "runtime/eval.h"
#include "sim/metrics.h"

namespace npp {

/**
 * MemProbe implementation used during block execution. The executor
 * maintains the grouping context:
 *
 *  - `sig`: hash of all loop counters (identical across the lanes of one
 *    iteration, distinct across iterations),
 *  - `warpTile`: linear id of the warp the currently-bound lane
 *    coordinates fall into,
 *  - `warpMultiplier`: number of hardware warps that issue this access
 *    (greater than 1 when unbound inner dimensions span several warps),
 *  - `laneVisitsPerGroup`: how many sequentially-simulated lane visits
 *    one warp access comprises (the product of warp-shape extents of the
 *    currently bound dimensions).
 */
class CoalesceProbe : public MemProbe
{
  public:
    CoalesceProbe(const DeviceConfig &device, KernelStats &stats)
        : device(device), stats(stats)
    {}

    ~CoalesceProbe() override { flushAll(); }

    /** @name Executor-maintained grouping context
     *  @{
     */
    uint64_t sig = 0;
    int64_t warpTile = 0;
    double warpMultiplier = 1.0;
    int laneVisitsPerGroup = 1;
    int laneInWarp = 0;
    /** Line-reuse model: when the resident working set fits in L1, a
     *  thread's back-to-back accesses to the same line are cache hits
     *  (sequential per-thread walks then cost coalesced-equivalent
     *  bandwidth; with too many resident threads the lines are evicted
     *  before reuse and every access pays a transaction). */
    bool lineReuse = false;
    /** @} */

    /** Trace-site ids served via shared-memory prefetch (derived from the
     *  KernelSpec's prefetched read expressions by the executor). */
    const std::unordered_set<int64_t> *prefetchedSites = nullptr;

    /** When false, accesses only count useful bytes (functional pass on
     *  unsampled blocks). */
    bool countTraffic = true;

    /** Optional per-trace-site attribution (ExecOptions::siteStats): the
     *  executor points this at its site->traffic map and the probe
     *  mirrors every traffic-counted byte/transaction into the access
     *  site's bucket. Null when site stats are off (the common case) so
     *  the extra bookkeeping costs nothing. */
    std::unordered_map<int64_t, SiteTraffic> *siteTraffic = nullptr;

    void onAccess(int64_t site, int arrayVar, int64_t physIndex,
                  bool isWrite, int bytes) override;

    /** Flush all incomplete warp accesses (end of block). */
    void flushAll();

    /** End-of-block accounting: flush incomplete groups and charge the
     *  prefetch staging fills (coalesced, once per block). */
    void finishBlock();

  private:
    struct Pending
    {
        double multiplier = 1.0;
        int visits = 0;
        int64_t site = 0; //!< originating access site (site attribution)
        /** Distinct transaction segments touched by the warp's lanes
         *  (at most one per lane). */
        int64_t segments[32];
        int numSegments = 0;

        void
        add(int64_t segment)
        {
            for (int i = 0; i < numSegments; i++) {
                if (segments[i] == segment)
                    return;
            }
            if (numSegments < 32)
                segments[numSegments++] = segment;
        }
    };

    /** Add a completed warp group's transactions to the kernel totals
     *  and, when attribution is on, to its site's bucket. */
    void charge(const Pending &p);

    const DeviceConfig &device;
    KernelStats &stats;
    std::unordered_map<uint64_t, Pending> pending;
    std::unordered_map<uint64_t, int64_t> lastLine;
    std::unordered_set<int64_t> blockPrefetchSegments;
};

} // namespace npp

#endif // NPP_SIM_COALESCE_H
