/**
 * @file
 * The simulated-GPU facade: compile-and-run convenience API used by
 * tests, examples, and the benchmark harnesses. Wraps the executor and
 * the timing model.
 */

#ifndef NPP_SIM_GPU_H
#define NPP_SIM_GPU_H

#include "codegen/compile.h"
#include "runtime/reference.h"
#include "sim/executor.h"
#include "sim/timing.h"

namespace npp {

/**
 * One simulated GPU device.
 */
class Gpu
{
  public:
    explicit Gpu(DeviceConfig config = teslaK20c())
        : config_(std::move(config))
    {}

    const DeviceConfig &config() const { return config_; }

    /** Execute a compiled spec; outputs land in the bound arrays. */
    SimReport run(const KernelSpec &spec, const Bindings &args,
                  const ExecOptions &options = {}) const;

    /** Compile with the given options and run. */
    SimReport compileAndRun(const Program &prog, const Bindings &args,
                            const CompileOptions &copts = {},
                            const ExecOptions &eopts = {}) const;

  private:
    DeviceConfig config_;
};

/** Largest absolute element difference (fatal on length mismatch). */
double maxAbsDiff(const std::vector<double> &a,
                  const std::vector<double> &b);

/** Largest relative element difference with an absolute floor. */
double maxRelDiff(const std::vector<double> &a,
                  const std::vector<double> &b, double floor = 1e-12);

} // namespace npp

#endif // NPP_SIM_GPU_H
