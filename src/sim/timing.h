/**
 * @file
 * The timing model: converts the executor's work counters into model time
 * using a roofline with an occupancy/latency-hiding concurrency term
 * (in the spirit of Hong & Kim's analytical GPU model, which the paper
 * cites as the natural scoring refinement). Every mechanism the paper's
 * analysis exploits is a first-class term: coalesced transactions vs
 * bandwidth, resident warps vs memory latency, block scheduling overhead,
 * kernel launch cost, device-malloc cost, and the combiner kernel.
 */

#ifndef NPP_SIM_TIMING_H
#define NPP_SIM_TIMING_H

#include <vector>

#include "analysis/target.h"
#include "sim/metrics.h"

namespace npp {

/** Compute the timing report for one kernel launch. */
SimReport computeTiming(const KernelStats &stats,
                        const DeviceConfig &device);

/** Host-to-device transfer time for `bytes` over PCIe. */
double transferMs(double bytes, const DeviceConfig &device);

/** Transfer time for `bytes` over an arbitrary link: bandwidth plus a
 *  fixed per-transfer latency. The PCIe overload above and the fleet
 *  layer's peer-link cost (sim/fleet.h) both funnel through this. */
double transferMs(double bytes, double bandwidthGBs, double latencyUs);

/**
 * Inter-device cost of collecting a fleet's shard results onto one
 * device over the peer link (sim/fleet.h): one serialized transfer of
 * `bytesPerDevice[d]` for every non-root device d, plus — when the
 * root is a reduction — a device-count-sized combine of the partials.
 */
double interDeviceMs(const std::vector<double> &bytesPerDevice,
                     const FleetConfig &fleet, bool reduceRoot);

/**
 * Multi-core CPU roofline used as the Fig 14 baseline: the reference
 * implementation's op/byte counts against a 2-socket Xeon-class machine.
 */
struct CpuConfig
{
    int cores = 8;
    double clockGHz = 2.67;
    /** Sustained scalar-equivalent ops per cycle per core (SSE3-tuned
     *  reference code sustains a couple of DP lanes). */
    double opsPerCycle = 4.0;
    double memBandwidthGBs = 25.0;
    /** Fraction of the program's useful bytes that actually reach DRAM
     *  on the CPU — its caches absorb reused vectors (e.g. the QPSCD
     *  coordinate vector), which the cacheless byte counts include. */
    double cacheFactor = 0.6;
    /** Threading / loop overhead per parallel section. */
    double dispatchUs = 20.0;
};

/** CPU model time for a kernel's work (ops and useful bytes). */
double cpuTimeMs(double computeOps, double bytes,
                 const CpuConfig &cpu = {});

} // namespace npp

#endif // NPP_SIM_TIMING_H
