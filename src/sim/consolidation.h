/**
 * @file
 * Consolidation sweep for programs with runtime-sized inner domains:
 * score the searched static mapping against the warp- and block-bin
 * consolidated mappings (analysis/consolidate.h) and report which one
 * wins and why. The sweep is the consolidation analogue of the
 * multi-device fleet sweep (sim/fleet.h): its verdicts feed the
 * --explain report (SearchExplanation::consolidationNote/Json) so a
 * caller can see the queue-build cost, bin fill, and the margin by
 * which consolidation beat — or lost to — the best static mapping.
 */

#ifndef NPP_SIM_CONSOLIDATION_H
#define NPP_SIM_CONSOLIDATION_H

#include <string>
#include <vector>

#include "sim/evalcache.h"
#include "sim/gpu.h"

namespace npp {

/** One scored entry of the sweep: the static baseline or one bin
 *  granularity. */
struct ConsolidationCandidate
{
    std::string label;   //!< "static (searched)", "warp bins", ...
    Strategy strategy = Strategy::MultiDim;
    BinGranularity granularity = BinGranularity::Warp;
    bool feasible = false;
    std::string verdict; //!< eligibility reason when infeasible
    double totalMs = 0.0;
    double queueBuildMs = 0.0;
    double binFill = 1.0;
    EvalTier tier = EvalTier::Simulated;
};

/** Sweep outcome: the winning mapping plus every candidate's verdict. */
struct ConsolidationChoice
{
    /** True when a consolidated candidate beat the static baseline. */
    bool consolidated = false;
    /** Winning granularity (meaningful when consolidated). */
    BinGranularity granularity = BinGranularity::Warp;
    /** One-line verdict: why consolidation won or lost. */
    std::string verdict;
    double staticMs = 0.0; //!< best static mapping's modeled time
    double bestMs = 0.0;   //!< winner's modeled time
    double speedup = 1.0;  //!< staticMs / bestMs
    std::vector<ConsolidationCandidate> candidates;
};

/**
 * Run the sweep. Evaluations are metrics-only and EvalCache-memoized;
 * `base` carries the caller's compile options (prealloc, objective,
 * raw pointers) so the static baseline matches what the caller would
 * have launched. A program without a runtime-sized inner domain — or
 * one the eligibility filter rejects — yields a not-consolidated
 * choice whose verdict names the reason.
 */
ConsolidationChoice searchConsolidation(const Gpu &gpu,
                                        const Program &prog,
                                        const Bindings &args,
                                        const CompileOptions &base,
                                        const ExecOptions &eopts);

/** Human-readable sweep table (--explain text form). */
std::string formatConsolidationChoice(const ConsolidationChoice &choice);

/** Machine-readable sweep object (--explain JSON form). */
std::string consolidationChoiceJson(const ConsolidationChoice &choice);

} // namespace npp

#endif // NPP_SIM_CONSOLIDATION_H
