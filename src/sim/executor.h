/**
 * @file
 * Functional + statistical execution of a compiled kernel spec on the
 * simulated GPU. The executor walks every thread block of the launch,
 * runs the pattern tree with the mapping's loop structure (span types,
 * per-level lanes), produces bit-exact outputs in the bound arrays, and
 * collects warp-granular traffic statistics through the coalescing probe.
 */

#ifndef NPP_SIM_EXECUTOR_H
#define NPP_SIM_EXECUTOR_H

#include "codegen/plan.h"
#include "runtime/binding.h"
#include "sim/metrics.h"

namespace npp {

/** Execution options. */
struct ExecOptions
{
    /** Traffic is measured on at most this many blocks (evenly sampled)
     *  and extrapolated; outputs are always computed for every block. */
    int64_t maxSampledBlocks = 256;

    /** Report-only execution: output arrays are privatized (the caller's
     *  buffers are never written), which makes concurrent runs over
     *  shared Bindings race-free and enables block-equivalence classing.
     *  The returned stats and derived SimReport are bit-identical to a
     *  functional run. */
    bool metricsOnly = false;

    /** Merge thread blocks whose interpreted behavior is provably
     *  identical up to the block index's affine address contribution:
     *  simulate one representative per equivalence class and replicate
     *  its per-block metric deltas — including variable-size programs'
     *  compaction-cursor traffic and, under siteStats, the per-site
     *  buckets (see sim/classify.h for the legality analysis). Only
     *  active together with metricsOnly; set to false for exact
     *  (every-block) simulation. Bit-identical stats either way —
     *  enforced by tests/sim/determinism_test and the differential
     *  suite tests/sim/classed_vs_full_test. When classing does not
     *  engage, KernelStats::classReason says why. */
    bool blockClasses = true;

    /** Collect per-trace-site traffic (KernelStats::siteTraffic) for the
     *  --stats diagnostics. Compatible with block classing: per-site
     *  deltas are recorded on class representatives and replicated like
     *  the aggregate counters. Changes the report payload, so it is part
     *  of the EvalCache key (a site-less cached report must not satisfy
     *  a siteStats request). */
    bool siteStats = false;

    /** Root-domain shard [rootShardLo, rootShardHi): simulate only this
     *  sub-range of the root pattern's index domain, as one device of a
     *  multi-device fleet would (see sim/fleet.h). The launch geometry
     *  is built from the shard's size, but every index the kernel sees
     *  — the root index variable, stores into the root output — is the
     *  true (unsharded) index, so functional outputs land where the
     *  full program would put them and the shift-invariant coalescing
     *  model (relative-base-v2) charges the same traffic a real
     *  per-device launch would. rootShardHi < 0 means "full domain"
     *  (the default; keeps EvalCache keys for unsharded runs
     *  unchanged). Requires a launch-known root size. */
    int64_t rootShardLo = 0;
    int64_t rootShardHi = -1;

    /** True when a proper shard is requested. */
    bool
    sharded() const
    {
        return rootShardLo > 0 || rootShardHi >= 0;
    }
};

/** Execute the spec with the given bindings; returns the stats needed by
 *  the timing model. Outputs land in the bound arrays. */
KernelStats executeOnDevice(const KernelSpec &spec, const Bindings &args,
                            const DeviceConfig &device,
                            const ExecOptions &options = {});

} // namespace npp

#endif // NPP_SIM_EXECUTOR_H
