/**
 * @file
 * The expression/statement evaluator shared by the sequential reference
 * interpreter (ground truth) and the GPU simulator's per-thread execution.
 * Evaluation carries all scalars as double (exact for the integer ranges
 * used here) and reports every array access to an optional memory probe so
 * the simulator can count per-warp coalesced transactions.
 */

#ifndef NPP_RUNTIME_EVAL_H
#define NPP_RUNTIME_EVAL_H

#include <cstdint>
#include <vector>

#include "ir/program.h"

namespace npp {

/**
 * One bound array: storage plus the linear view transform used by the
 * preallocation optimization (physical = offset + logical * stride).
 */
struct ArraySlot
{
    double *data = nullptr;
    int64_t size = 0;    //!< logical element count visible to the program
    int64_t offset = 0;  //!< physical offset (elements)
    int64_t stride = 1;  //!< physical stride (elements)

    /** Total physical capacity backing the slot (for bounds checks). */
    int64_t physSize = 0;

    /** Address transform reported to the memory probe. Usually mirrors
     *  offset/stride, but the simulator decouples them for preallocated
     *  local arrays: data lives in a small reused buffer while the probe
     *  sees the layout-accurate device address (Fig 11). */
    int64_t addrBase = 0;
    int64_t addrStride = 1;

    /** Device element size reported to the probe (cached from the
     *  variable's scalar kind at bind time — the access path is too hot
     *  for a per-access Program::var lookup). */
    int elemBytes = 8;

    int64_t physIndex(int64_t logical) const
    {
        return offset + logical * stride;
    }

    int64_t traceAddr(int64_t logical) const
    {
        return addrBase + logical * addrStride;
    }
};

/**
 * Observer for array traffic. `site` identifies the static access site
 * (the Expr/Stmt/Pattern trace-site id assigned by Program::validate()),
 * which the coalescing model uses to group the accesses that the 32 lanes
 * of a warp issue together. Ids are stable across rebuilds of the same
 * program, so simulated metrics are bit-reproducible; node addresses are
 * not and must never leak into probe keys.
 */
class MemProbe
{
  public:
    virtual ~MemProbe() = default;
    virtual void onAccess(int64_t site, int arrayVar, int64_t physIndex,
                          bool isWrite, int bytes) = 0;
};

/**
 * Mutable evaluation state: one scalar slot and one array slot per program
 * variable. Scalar slots hold params, let-locals, and loop indices alike.
 */
struct EvalCtx
{
    const Program *prog = nullptr;
    std::vector<double> scalars;
    std::vector<ArraySlot> arrays;
    MemProbe *probe = nullptr;

    /** Accumulated compute cost (weighted op count) for timing. */
    uint64_t opCount = 0;

    /** Address-computation cost charged per array access. Compiler-
     *  generated code goes through multidimensional-array wrappers with
     *  offset/stride fields (the ~20% gap vs hand-written raw pointers
     *  the paper reports on Nearest Neighbor); manual kernels use 1. */
    uint64_t accessOpCost = 2;

    explicit EvalCtx(const Program &program)
        : prog(&program),
          scalars(program.numVars(), 0.0),
          arrays(program.numVars())
    {}
};

/** Evaluate a pure expression in the given context. */
double evalExpr(const Expr *expr, EvalCtx &ctx);

inline double
evalExpr(const ExprRef &expr, EvalCtx &ctx)
{
    return evalExpr(expr.get(), ctx);
}

/** Bounds-checked array read through a slot, reporting to the probe. */
double loadArray(int64_t site, int arrayVar, int64_t logical, EvalCtx &ctx);

/** Bounds-checked array write through a slot, reporting to the probe. */
void storeArray(int64_t site, int arrayVar, int64_t logical, double value,
                EvalCtx &ctx);

} // namespace npp

#endif // NPP_RUNTIME_EVAL_H
