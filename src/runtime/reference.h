/**
 * @file
 * Sequential reference interpreter: executes a program with the plain
 * sequential semantics of Table I. Every functional test validates the
 * simulator's mapped execution against this interpreter, and the CPU
 * roofline model is fed from the op/byte counts it collects.
 */

#ifndef NPP_RUNTIME_REFERENCE_H
#define NPP_RUNTIME_REFERENCE_H

#include <memory>
#include <unordered_map>

#include "runtime/binding.h"

namespace npp {

/** Aggregate work counts from a sequential run (for the CPU model). */
struct WorkCounts
{
    uint64_t computeOps = 0;  //!< weighted scalar operations
    uint64_t bytesRead = 0;   //!< bytes loaded from program arrays
    uint64_t bytesWritten = 0;
    uint64_t iterations = 0;  //!< total pattern iterations executed
};

/**
 * Runs programs sequentially. Stateless between runs apart from reusable
 * local-array storage.
 */
class ReferenceInterp
{
  public:
    /** Execute the program with the given bindings; returns work counts. */
    WorkCounts run(const Program &prog, const Bindings &args);
};

} // namespace npp

#endif // NPP_RUNTIME_REFERENCE_H
