#include "runtime/reference.h"

#include <cmath>

#include "support/logging.h"

namespace npp {

namespace {

int64_t
asIndex(double v)
{
    return static_cast<int64_t>(std::llround(v));
}

/** Byte-count probe for the WorkCounts report. */
class CountingProbe : public MemProbe
{
  public:
    void
    onAccess(int64_t, int, int64_t, bool isWrite, int bytes) override
    {
        if (isWrite)
            bytesWritten += bytes;
        else
            bytesRead += bytes;
    }

    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
};

/**
 * Recursive sequential executor. Local array storage is arena-allocated
 * per (array-local var) and reused across outer iterations, mirroring how
 * the preallocation optimization reuses memory.
 */
class SeqExec
{
  public:
    SeqExec(const Program &prog, EvalCtx &ctx, WorkCounts &counts)
        : prog(prog), ctx(ctx), counts(counts)
    {}

    void
    runRoot()
    {
        const Pattern &p = prog.root();
        const int64_t n = asIndex(evalExpr(p.size, ctx));
        const int out = prog.rootOutput();

        switch (p.kind) {
          case PatternKind::Map:
          case PatternKind::ZipWith:
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
                storeArray(p.site, out, i, evalExpr(p.yield, ctx), ctx);
            }
            break;
          case PatternKind::Foreach:
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
            }
            break;
          case PatternKind::Reduce: {
            double acc = combinerIdentity(p.combiner);
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
                acc = applyOp(p.combiner, acc, evalExpr(p.yield, ctx));
            }
            storeArray(p.site, out, 0, acc, ctx);
            break;
          }
          case PatternKind::Filter: {
            int64_t kept = 0;
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
                if (evalExpr(p.filterPred, ctx) != 0.0) {
                    storeArray(p.site, out, kept, evalExpr(p.yield, ctx), ctx);
                    kept++;
                }
            }
            storeArray(p.site, prog.countOutput(), 0,
                       static_cast<double>(kept), ctx);
            break;
          }
          case PatternKind::GroupBy: {
            // Initialize the key domain to the combiner identity.
            const ArraySlot &slot = ctx.arrays[out];
            for (int64_t k = 0; k < slot.size; k++)
                storeArray(p.site, out, k, combinerIdentity(p.combiner), ctx);
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
                const int64_t key = asIndex(evalExpr(p.key, ctx));
                NPP_ASSERT(key >= 0 && key < slot.size,
                           "groupBy key {} outside key domain {}", key,
                           slot.size);
                const double prev = loadArray(p.site, out, key, ctx);
                storeArray(p.site, out, key,
                           applyOp(p.combiner, prev, evalExpr(p.yield, ctx)),
                           ctx);
            }
            break;
          }
        }
    }

  private:
    void
    runNested(const Stmt &stmt)
    {
        const Pattern &p = *stmt.pattern;
        const int64_t n = asIndex(evalExpr(p.size, ctx));

        switch (p.kind) {
          case PatternKind::Map:
          case PatternKind::ZipWith: {
            bindLocal(stmt.var, n);
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
                storeArray(p.site, stmt.var, i, evalExpr(p.yield, ctx), ctx);
            }
            break;
          }
          case PatternKind::Reduce: {
            double acc = combinerIdentity(p.combiner);
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
                acc = applyOp(p.combiner, acc, evalExpr(p.yield, ctx));
            }
            ctx.scalars[stmt.var] = acc;
            break;
          }
          case PatternKind::Foreach:
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
            }
            break;
          case PatternKind::Filter: {
            // Variable-size output: the local is preallocated at the
            // static upper bound n and survivors compact into its prefix;
            // the kept count lands in the stmt's count scalar.
            bindLocal(stmt.var, n);
            int64_t kept = 0;
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
                if (evalExpr(p.filterPred, ctx) != 0.0) {
                    storeArray(p.site, stmt.var, kept,
                               evalExpr(p.yield, ctx), ctx);
                    kept++;
                }
            }
            ctx.scalars[stmt.countVar] = static_cast<double>(kept);
            break;
          }
          case PatternKind::GroupBy: {
            // Fixed key domain: the local has keyDomain slots, seeded
            // with the combiner identity, updated by keyed read-modify-
            // write in iteration order.
            const int64_t keys = asIndex(evalExpr(p.keyDomain, ctx));
            bindLocal(stmt.var, keys);
            for (int64_t k = 0; k < keys; k++)
                storeArray(p.site, stmt.var, k,
                           combinerIdentity(p.combiner), ctx);
            for (int64_t i = 0; i < n; i++) {
                counts.iterations++;
                ctx.scalars[p.indexVar] = static_cast<double>(i);
                runStmts(p.body);
                const int64_t key = asIndex(evalExpr(p.key, ctx));
                NPP_ASSERT(key >= 0 && key < keys,
                           "nested groupBy key {} outside key domain {}",
                           key, keys);
                const double prev = loadArray(p.site, stmt.var, key, ctx);
                storeArray(p.site, stmt.var, key,
                           applyOp(p.combiner, prev,
                                   evalExpr(p.yield, ctx)),
                           ctx);
            }
            break;
          }
        }
    }

    /** Bind an array local to arena storage with `n` visible slots. */
    void
    bindLocal(int var, int64_t n)
    {
        auto &store = arena[var];
        if (!store)
            store = std::make_unique<std::vector<double>>();
        if (static_cast<int64_t>(store->size()) < n)
            store->resize(n);
        ArraySlot slot;
        slot.data = store->data();
        slot.size = n;
        slot.physSize = static_cast<int64_t>(store->size());
        slot.elemBytes = scalarBytes(ctx.prog->var(var).kind);
        ctx.arrays[var] = slot;
    }

    void
    runStmts(const std::vector<StmtPtr> &stmts)
    {
        for (const auto &s : stmts) {
            switch (s->kind) {
              case StmtKind::Let:
              case StmtKind::Assign:
                ctx.scalars[s->var] = evalExpr(s->value, ctx);
                break;
              case StmtKind::Store:
                storeArray(s->site, s->array,
                           asIndex(evalExpr(s->index, ctx)),
                           evalExpr(s->value, ctx), ctx);
                break;
              case StmtKind::If:
                if (evalExpr(s->cond, ctx) != 0.0)
                    runStmts(s->body);
                else
                    runStmts(s->elseBody);
                break;
              case StmtKind::SeqLoop: {
                const int64_t trip = asIndex(evalExpr(s->trip, ctx));
                for (int64_t k = 0; k < trip; k++) {
                    ctx.scalars[s->var] = static_cast<double>(k);
                    if (s->cond && evalExpr(s->cond, ctx) != 0.0)
                        break;
                    runStmts(s->body);
                }
                break;
              }
              case StmtKind::Nested:
                runNested(*s);
                break;
            }
        }
    }

    const Program &prog;
    EvalCtx &ctx;
    WorkCounts &counts;
    std::unordered_map<int, std::unique_ptr<std::vector<double>>> arena;
};

} // namespace

WorkCounts
ReferenceInterp::run(const Program &prog, const Bindings &args)
{
    // Fail structurally-invalid programs (e.g. a nested filter missing
    // its count scalar) with validate()'s diagnostic up front instead of
    // a mid-run panic; programs from ProgramBuilder::build() are already
    // validated and revalidation is cheap and idempotent.
    prog.validate();

    WorkCounts counts;
    CountingProbe probe;
    EvalCtx ctx(prog);
    args.seed(ctx);
    ctx.probe = &probe;

    SeqExec exec(prog, ctx, counts);
    exec.runRoot();

    counts.computeOps = ctx.opCount;
    counts.bytesRead = probe.bytesRead;
    counts.bytesWritten = probe.bytesWritten;
    return counts;
}

} // namespace npp
