/**
 * @file
 * Parameter bindings: attach concrete scalar values and host buffers to a
 * program's parameters before running it on the reference interpreter or
 * the GPU simulator.
 */

#ifndef NPP_RUNTIME_BINDING_H
#define NPP_RUNTIME_BINDING_H

#include <vector>

#include "ir/builder.h"
#include "runtime/eval.h"

namespace npp {

/**
 * Concrete argument values for one program execution. Array storage is
 * owned by the caller and must outlive the run.
 */
class Bindings
{
  public:
    explicit Bindings(const Program &prog);

    /** Bind a scalar parameter (by the Ex handle the builder returned). */
    void scalar(Ex param, double value);

    /** Bind an array parameter to caller-owned storage. */
    void array(Arr param, std::vector<double> &storage);

    /** Translate every bound array's simulated device address by the
     *  given element count (the storage itself does not move, only the
     *  addresses the memory probe sees). Functional results are
     *  unaffected; the coalescing model's transaction counts are
     *  relative-base and must be bit-invariant under any such
     *  translation — the property the shift-invariance suite pins. */
    void shiftAddrBases(int64_t deltaElems);

    /** Seed an EvalCtx with the bound params; fatal if any param is
     *  missing. Locals/indices start at zero. */
    void seed(EvalCtx &ctx) const;

    /** Value of a bound scalar param (fatal if unbound). */
    double scalarValue(int varId) const;

    /** Stable fingerprint of everything bound: scalar values, array
     *  sizes and full contents. Two bindings with equal fingerprints
     *  drive a program identically, which is what the evaluation cache
     *  keys on. O(total array elements). */
    uint64_t fingerprint() const;

    /** Slot of an array param (null data when unbound); used by the
     *  evaluation cache to capture and replay output contents. */
    const ArraySlot &arraySlot(int varId) const { return arrays_[varId]; }

    const Program &program() const { return *prog_; }

  private:
    const Program *prog_;
    std::vector<double> scalars_;
    std::vector<bool> scalarBound_;
    std::vector<ArraySlot> arrays_;
};

} // namespace npp

#endif // NPP_RUNTIME_BINDING_H
