#include "runtime/binding.h"

#include <cstring>

#include "support/logging.h"

namespace npp {

Bindings::Bindings(const Program &prog)
    : prog_(&prog),
      scalars_(prog.numVars(), 0.0),
      scalarBound_(prog.numVars(), false),
      arrays_(prog.numVars())
{}

void
Bindings::scalar(Ex param, double value)
{
    NPP_ASSERT(param.valid() && param.ref()->kind == ExprKind::Var,
               "scalar binding must name a param");
    const int id = param.ref()->varId;
    NPP_ASSERT(prog_->var(id).role == VarRole::ScalarParam,
               "{} is not a scalar param", prog_->var(id).name);
    scalars_[id] = value;
    scalarBound_[id] = true;
}

void
Bindings::array(Arr param, std::vector<double> &storage)
{
    const int id = param.id();
    NPP_ASSERT(prog_->var(id).role == VarRole::ArrayParam,
               "{} is not an array param", prog_->var(id).name);
    ArraySlot slot;
    slot.data = storage.data();
    slot.size = static_cast<int64_t>(storage.size());
    slot.physSize = slot.size;
    // Distinct virtual base per array so the coalescing model never
    // merges transactions across arrays.
    slot.addrBase = static_cast<int64_t>(id) << 40;
    slot.addrStride = 1;
    slot.elemBytes = scalarBytes(prog_->var(id).kind);
    arrays_[id] = slot;
}

void
Bindings::shiftAddrBases(int64_t deltaElems)
{
    for (ArraySlot &slot : arrays_) {
        if (slot.data)
            slot.addrBase += deltaElems;
    }
}

void
Bindings::seed(EvalCtx &ctx) const
{
    for (const auto &v : prog_->vars()) {
        if (v.role == VarRole::ScalarParam) {
            if (!scalarBound_[v.id])
                NPP_FATAL("{}: scalar param {} not bound", prog_->name(),
                          v.name);
            ctx.scalars[v.id] = scalars_[v.id];
        } else if (v.role == VarRole::ArrayParam) {
            if (arrays_[v.id].data == nullptr)
                NPP_FATAL("{}: array param {} not bound", prog_->name(),
                          v.name);
            ctx.arrays[v.id] = arrays_[v.id];
        }
    }
}

namespace {

/** One word-at-a-time hash step (order-dependent, ~4 ops/word — the
 *  fingerprint walks every bound array element, so this is hot). */
inline uint64_t
mixWord(uint64_t h, uint64_t v)
{
    h += v * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    h *= 0xff51afd7ed558ccdULL;
    return h;
}

inline uint64_t
mixDouble(uint64_t h, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return mixWord(h, bits);
}

} // namespace

uint64_t
Bindings::fingerprint() const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto &v : prog_->vars()) {
        if (v.role == VarRole::ScalarParam) {
            h = mixWord(h, static_cast<uint64_t>(v.id));
            h = mixWord(h, scalarBound_[v.id] ? 1 : 0);
            h = mixDouble(h, scalars_[v.id]);
        } else if (v.role == VarRole::ArrayParam) {
            const ArraySlot &slot = arrays_[v.id];
            h = mixWord(h, static_cast<uint64_t>(v.id));
            h = mixWord(h, static_cast<uint64_t>(slot.size));
            if (slot.data) {
                for (int64_t i = 0; i < slot.physSize; i++)
                    h = mixDouble(h, slot.data[i]);
            }
        }
    }
    return h;
}

double
Bindings::scalarValue(int varId) const
{
    NPP_ASSERT(scalarBound_[varId], "scalar param {} not bound",
               prog_->var(varId).name);
    return scalars_[varId];
}

} // namespace npp
