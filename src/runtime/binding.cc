#include "runtime/binding.h"

#include "support/logging.h"

namespace npp {

Bindings::Bindings(const Program &prog)
    : prog_(&prog),
      scalars_(prog.numVars(), 0.0),
      scalarBound_(prog.numVars(), false),
      arrays_(prog.numVars())
{}

void
Bindings::scalar(Ex param, double value)
{
    NPP_ASSERT(param.valid() && param.ref()->kind == ExprKind::Var,
               "scalar binding must name a param");
    const int id = param.ref()->varId;
    NPP_ASSERT(prog_->var(id).role == VarRole::ScalarParam,
               "{} is not a scalar param", prog_->var(id).name);
    scalars_[id] = value;
    scalarBound_[id] = true;
}

void
Bindings::array(Arr param, std::vector<double> &storage)
{
    const int id = param.id();
    NPP_ASSERT(prog_->var(id).role == VarRole::ArrayParam,
               "{} is not an array param", prog_->var(id).name);
    ArraySlot slot;
    slot.data = storage.data();
    slot.size = static_cast<int64_t>(storage.size());
    slot.physSize = slot.size;
    // Distinct virtual base per array so the coalescing model never
    // merges transactions across arrays.
    slot.addrBase = static_cast<int64_t>(id) << 40;
    slot.addrStride = 1;
    arrays_[id] = slot;
}

void
Bindings::seed(EvalCtx &ctx) const
{
    for (const auto &v : prog_->vars()) {
        if (v.role == VarRole::ScalarParam) {
            if (!scalarBound_[v.id])
                NPP_FATAL("{}: scalar param {} not bound", prog_->name(),
                          v.name);
            ctx.scalars[v.id] = scalars_[v.id];
        } else if (v.role == VarRole::ArrayParam) {
            if (arrays_[v.id].data == nullptr)
                NPP_FATAL("{}: array param {} not bound", prog_->name(),
                          v.name);
            ctx.arrays[v.id] = arrays_[v.id];
        }
    }
}

double
Bindings::scalarValue(int varId) const
{
    NPP_ASSERT(scalarBound_[varId], "scalar param {} not bound",
               prog_->var(varId).name);
    return scalars_[varId];
}

} // namespace npp
