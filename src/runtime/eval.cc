#include "runtime/eval.h"

#include <cmath>

#include "support/logging.h"

namespace npp {

double
loadArray(int64_t site, int arrayVar, int64_t logical, EvalCtx &ctx)
{
    const ArraySlot &slot = ctx.arrays[arrayVar];
    NPP_ASSERT(slot.data != nullptr, "read of unbound array {}",
               ctx.prog->var(arrayVar).name);
    NPP_ASSERT(logical >= 0 && logical < slot.size,
               "read out of bounds: {}[{}], size {}",
               ctx.prog->var(arrayVar).name, logical, slot.size);
    const int64_t phys = slot.physIndex(logical);
    if (ctx.probe) {
        ctx.probe->onAccess(site, arrayVar, slot.traceAddr(logical), false,
                            slot.elemBytes);
    }
    return slot.data[phys];
}

void
storeArray(int64_t site, int arrayVar, int64_t logical, double value,
           EvalCtx &ctx)
{
    const ArraySlot &slot = ctx.arrays[arrayVar];
    NPP_ASSERT(slot.data != nullptr, "write to unbound array {}",
               ctx.prog->var(arrayVar).name);
    NPP_ASSERT(logical >= 0 && logical < slot.size,
               "write out of bounds: {}[{}], size {}",
               ctx.prog->var(arrayVar).name, logical, slot.size);
    const int64_t phys = slot.physIndex(logical);
    if (ctx.probe) {
        ctx.probe->onAccess(site, arrayVar, slot.traceAddr(logical), true,
                            slot.elemBytes);
    }
    slot.data[phys] = value;
}

double
evalExpr(const Expr *expr, EvalCtx &ctx)
{
    NPP_ASSERT(expr != nullptr, "eval of null expression");
    switch (expr->kind) {
      case ExprKind::Lit:
        return expr->lit;
      case ExprKind::Var:
        return ctx.scalars[expr->varId];
      case ExprKind::Binary: {
        ctx.opCount += opCost(expr->op);
        const double a = evalExpr(expr->a.get(), ctx);
        // Short-circuit logic ops to match generated-code semantics.
        if (expr->op == Op::And && a == 0.0)
            return 0.0;
        if (expr->op == Op::Or && a != 0.0)
            return 1.0;
        const double b = evalExpr(expr->b.get(), ctx);
        return applyOp(expr->op, a, b);
      }
      case ExprKind::Unary: {
        ctx.opCount += opCost(expr->op);
        return applyOp(expr->op, evalExpr(expr->a.get(), ctx), 0.0);
      }
      case ExprKind::Select: {
        ctx.opCount += 1;
        const double c = evalExpr(expr->a.get(), ctx);
        return evalExpr(c != 0.0 ? expr->b.get() : expr->c.get(), ctx);
      }
      case ExprKind::Read: {
        ctx.opCount += ctx.accessOpCost;
        const double idx = evalExpr(expr->a.get(), ctx);
        return loadArray(expr->readSite, expr->varId,
                         static_cast<int64_t>(std::llround(idx)), ctx);
      }
    }
    NPP_PANIC("unknown expr kind");
}

} // namespace npp
