/**
 * @file
 * Predictor-guided mapping search: the paper's two-stage
 * score-then-verify structure with a learned ranker in the middle.
 * The search still enumerates and scores candidates with Algorithm 1;
 * the predictor then ranks the top-scoring distinct candidates by
 * predicted time and only the top-k survivors are exactly simulated —
 * the exact simulator stays the oracle, so the selected mapping's
 * simulated report is bit-identical to what the full sweep would have
 * produced *when the true winner survives pruning* (default k is sized
 * so it does on every demo program; enforced by tests/predict and the
 * fig_predict gates). With no model loaded — missing file, corrupt
 * file, stale feature-schema version — the sweep silently falls back
 * to the full (unpruned) evaluation.
 *
 * Knobs (all hardened through support/env.h):
 *   NPP_PREDICT=1          enable predictor-guided pruning
 *   NPP_PREDICT_TOPK=N     survivors per sweep (default 12)
 *   NPP_PREDICT_DIR=PATH   sample store; harvest every exact simulation
 *   NPP_PREDICT_MODEL=PATH model file (default: <dir>/model.nppprd)
 */

#ifndef NPP_PREDICT_PREDICT_H
#define NPP_PREDICT_PREDICT_H

#include <memory>

#include "predict/model.h"
#include "sim/evalcache.h"

namespace npp {

/** Score-ranked distinct candidates the sweep evaluates (the universe
 *  the predictor prunes). Matches the autotuner's neighborhood. */
inline constexpr int kPredictUniverse = 48;

/** Default survivors per sweep (score choice always included). */
inline constexpr int kPredictDefaultTopK = 12;

/** Resolved NPP_PREDICT* configuration. */
struct PredictOptions
{
    bool enabled = false;   //!< NPP_PREDICT
    int topK = kPredictDefaultTopK; //!< NPP_PREDICT_TOPK, clamped [1, universe]
    std::string sampleDir;  //!< NPP_PREDICT_DIR ("" = no harvesting)
    std::string modelPath;  //!< NPP_PREDICT_MODEL or <dir>/model.nppprd
};

/** Parse the NPP_PREDICT* environment (fresh read; warn+fallback on
 *  garbage via the hardened env helpers). */
PredictOptions predictOptionsFromEnv();

/** One candidate's verdict in a predictive sweep. */
struct PredictCandidate
{
    MappingDecision decision;
    double score = 0.0;       //!< Algorithm 1 soft-constraint score
    double predictedMs = 0.0; //!< model ranking (0 without a model)
    bool survived = false;    //!< exactly simulated?
    bool isScoreChoice = false;
    double exactMs = 0.0;     //!< simulated time (survivors only)
};

/** Outcome of one predictive sweep. */
struct PredictSweep
{
    /** False when the sweep fell back to full evaluation. */
    bool usedModel = false;
    /** Why there was no pruning ("" when usedModel). */
    std::string fallbackReason;

    std::vector<PredictCandidate> candidates; //!< deterministic order
    MappingDecision best;
    double bestMs = 0.0;

    int64_t pruned = 0;    //!< candidates skipped on the model's word
    int64_t survivors = 0; //!< candidates exactly simulated

    /** Explain-report annotations (SearchExplanation::predictNote /
     *  predictJson — same contract as the fleet/consolidation layers). */
    std::string note() const;
    std::string toJson() const;
};

/**
 * Run the empirical mapping sweep for `prog`: enumerate + score via
 * Algorithm 1 (keepCandidates), take the top-kPredictUniverse distinct
 * candidates (score choice first), then either exactly simulate all of
 * them (`model` null → full sweep) or only the predictor's top-k
 * (score choice always survives). The winner is the minimum exact time,
 * folded serially in candidate order, so full and pruned sweeps agree
 * whenever the true winner survives. Evaluations flow through the
 * tiered EvalCache and fire the harvest observer like any other.
 */
PredictSweep
predictiveSweep(const Gpu &gpu, const Program &prog, const Bindings &args,
                CompileOptions base, const PredictModel *model, int topK);

/** @name Process-global predict runtime
 *
 * One initPredictFromEnv() call (nppc, the serve loop, and the benches
 * make it on startup) resolves the env knobs, loads the model if any,
 * and installs the sample-harvesting observer when NPP_PREDICT_DIR is
 * set. Counters accumulate across every sweep in the process and are
 * exported by predictStatsJson() (--stats, serve stats).
 *  @{
 */
struct PredictStats
{
    bool enabled = false;
    uint32_t modelVersion = 0; //!< loaded model's schema (0 = no model)
    uint64_t modelSamples = 0; //!< samples the loaded model was fit on
    int topK = 0;
    uint64_t pruned = 0;       //!< candidates skipped across all sweeps
    uint64_t survivors = 0;    //!< candidates exactly simulated
    uint64_t prunedSweeps = 0; //!< sweeps that used the model
    uint64_t fullSweeps = 0;   //!< sweeps that fell back
    uint64_t samplesHarvested = 0; //!< records appended this process
    uint64_t sampleStoreRecords = 0; //!< valid records on disk (scan)
};

class PredictRuntime
{
  public:
    static PredictRuntime &instance();

    /** Resolve env knobs, (re)load the model, (re)install the harvest
     *  observer. Idempotent; later calls re-read the environment. */
    void initFromEnv();

    /** Programmatic overrides for benches/tests (no env dependence). */
    void setSampleDir(const std::string &dir);
    void setModel(std::optional<PredictModel> model);
    void setEnabled(bool on, int topK);

    const PredictOptions &options() const { return opts_; }
    /** Whether sweeps should run at all (NPP_PREDICT=1 or setEnabled);
     *  true even without a model — those sweeps fall back to full
     *  evaluation but still report provenance. */
    bool active() const;
    /** Null when disabled or no valid model is loaded. */
    const PredictModel *model() const;

    /** Run predictiveSweep under the runtime's configuration, recording
     *  the counters. */
    PredictSweep sweep(const Gpu &gpu, const Program &prog,
                       const Bindings &args, const CompileOptions &base);

    PredictStats stats() const;

  private:
    PredictRuntime() = default;

    PredictOptions opts_;
    std::optional<PredictModel> model_;
    std::shared_ptr<SampleWriter> writer_;
    uint64_t pruned_ = 0;
    uint64_t survivors_ = 0;
    uint64_t prunedSweeps_ = 0;
    uint64_t fullSweeps_ = 0;
};

/** Resolve env + load model + install harvester (see PredictRuntime). */
void initPredictFromEnv();

/** Machine-readable counter export for --stats and the serve stats
 *  request (predict_pruned, predict_survivors, predict_model_version,
 *  sample-store size, ...). */
std::string predictStatsJson();
/** @} */

} // namespace npp

#endif // NPP_PREDICT_PREDICT_H
