#include "predict/samples.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "support/logging.h"

namespace npp {

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t
fnvBytes(const void *data, size_t n, uint64_t h = kFnvBasis)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

constexpr uint32_t kRecordMagic = 0x31504d53u; // "SMP1"

/** Fixed record layout: magic, schema version, feature count, the
 *  features, the label, then an FNV-1a checksum of everything before it.
 *  Fixed size (the count is part of the schema), so a reader walks a
 *  file in constant strides and one corrupt record cannot desynchronize
 *  the rest. */
constexpr size_t kRecordBytes = 3 * sizeof(uint32_t) +
                                (kPredictFeatureCount + 1) * sizeof(double) +
                                sizeof(uint64_t);

void
packRecord(const PredictSample &s, char out[kRecordBytes])
{
    char *p = out;
    const auto put = [&](const void *src, size_t n) {
        std::memcpy(p, src, n);
        p += n;
    };
    const uint32_t magic = kRecordMagic;
    const uint32_t version = kPredictFeatureVersion;
    const uint32_t count = kPredictFeatureCount;
    put(&magic, sizeof magic);
    put(&version, sizeof version);
    put(&count, sizeof count);
    put(s.features.v.data(), kPredictFeatureCount * sizeof(double));
    put(&s.measuredMs, sizeof(double));
    const uint64_t sum = fnvBytes(out, static_cast<size_t>(p - out));
    put(&sum, sizeof sum);
}

bool
unpackRecord(const char *in, PredictSample *out)
{
    const char *p = in;
    const auto get = [&](void *dst, size_t n) {
        std::memcpy(dst, p, n);
        p += n;
    };
    uint32_t magic = 0, version = 0, count = 0;
    get(&magic, sizeof magic);
    get(&version, sizeof version);
    get(&count, sizeof count);
    if (magic != kRecordMagic || version != kPredictFeatureVersion ||
        count != kPredictFeatureCount)
        return false;
    get(out->features.v.data(), kPredictFeatureCount * sizeof(double));
    get(&out->measuredMs, sizeof(double));
    uint64_t sum = 0;
    get(&sum, sizeof sum);
    return fnvBytes(in, kRecordBytes - sizeof(uint64_t)) == sum;
}

void
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        NPP_WARN("predict samples: cannot create {} ({}); harvesting "
                 "disabled",
                 dir, std::strerror(errno));
}

std::vector<std::string>
sampleFiles(const std::string &dir)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return names;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        const std::string suffix = ".nppsmp";
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            names.push_back(dir + "/" + name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace

struct SampleWriter::Impl
{
    std::mutex mu;
    std::FILE *file = nullptr;
    uint64_t appended = 0;
    bool warned = false;
};

SampleWriter::SampleWriter(std::string dir)
    : impl_(new Impl)
{
    if (dir.empty())
        return;
    ensureDir(dir);
    const std::string path =
        dir + "/samples-" + std::to_string(::getpid()) + ".nppsmp";
    impl_->file = std::fopen(path.c_str(), "ab");
    if (!impl_->file)
        NPP_WARN("predict samples: cannot open {} ({}); harvesting "
                 "disabled",
                 path, std::strerror(errno));
}

SampleWriter::~SampleWriter()
{
    if (impl_->file)
        std::fclose(impl_->file);
    delete impl_;
}

bool
SampleWriter::enabled() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->file != nullptr;
}

void
SampleWriter::append(const PredictSample &sample)
{
    char rec[kRecordBytes];
    packRecord(sample, rec);
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->file)
        return;
    if (std::fwrite(rec, 1, kRecordBytes, impl_->file) != kRecordBytes ||
        std::fflush(impl_->file) != 0) {
        if (!impl_->warned) {
            impl_->warned = true;
            NPP_WARN("predict samples: short write ({}); harvesting "
                     "disabled",
                     std::strerror(errno));
        }
        std::fclose(impl_->file);
        impl_->file = nullptr;
        return;
    }
    impl_->appended++;
}

uint64_t
SampleWriter::appended() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->appended;
}

std::vector<PredictSample>
loadPredictSamples(const std::string &dir, SampleLoadStats *stats)
{
    std::vector<PredictSample> samples;
    SampleLoadStats local;
    for (const std::string &path : sampleFiles(dir)) {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            continue;
        local.files++;
        std::string data;
        char buf[1 << 16];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
            data.append(buf, got);
        std::fclose(f);
        size_t off = 0;
        for (; off + kRecordBytes <= data.size(); off += kRecordBytes) {
            PredictSample s;
            if (unpackRecord(data.data() + off, &s)) {
                samples.push_back(s);
                local.records++;
            } else {
                local.rejected++;
            }
        }
        if (off != data.size())
            local.rejected++; // trailing partial record
    }
    if (stats)
        *stats = local;
    return samples;
}

uint64_t
countPredictSamples(const std::string &dir)
{
    if (dir.empty())
        return 0;
    uint64_t count = 0;
    for (const std::string &path : sampleFiles(dir)) {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            continue;
        std::string data;
        char buf[1 << 16];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
            data.append(buf, got);
        std::fclose(f);
        for (size_t off = 0; off + kRecordBytes <= data.size();
             off += kRecordBytes) {
            PredictSample s;
            if (unpackRecord(data.data() + off, &s))
                count++;
        }
    }
    return count;
}

} // namespace npp
