#include "predict/model.h"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "support/logging.h"
#include "support/strings.h"

namespace npp {

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t
fnvBytes(const void *data, size_t n, uint64_t h = kFnvBasis)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

constexpr char kModelMagic[8] = {'N', 'P', 'P', 'P', 'R', 'D', '1', '\n'};

void
putF64(std::string &buf, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    buf.append(reinterpret_cast<const char *>(&bits), sizeof bits);
}

void
putU64(std::string &buf, uint64_t v)
{
    buf.append(reinterpret_cast<const char *>(&v), sizeof v);
}

void
putU32(std::string &buf, uint32_t v)
{
    buf.append(reinterpret_cast<const char *>(&v), sizeof v);
}

/** Bounds-checked reader: overruns latch ok=false (same discipline as
 *  the eval cache's ByteReader). */
struct Reader
{
    const char *p;
    size_t n;
    size_t off = 0;
    bool ok = true;

    bool
    take(void *out, size_t count)
    {
        if (!ok || n - off < count) {
            ok = false;
            return false;
        }
        std::memcpy(out, p + off, count);
        off += count;
        return true;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        take(&v, sizeof v);
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        take(&v, sizeof v);
        return v;
    }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
};

/** Solve A x = b in place (A symmetric positive definite after the
 *  ridge term; partial-pivot Gaussian elimination for safety). Returns
 *  false on a (numerically) singular system. */
bool
solveLinear(std::vector<std::vector<double>> &a, std::vector<double> &b)
{
    const size_t n = b.size();
    for (size_t col = 0; col < n; col++) {
        size_t pivot = col;
        for (size_t r = col + 1; r < n; r++) {
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        }
        if (std::abs(a[pivot][col]) < 1e-12)
            return false;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (size_t r = col + 1; r < n; r++) {
            const double factor = a[r][col] / a[col][col];
            if (factor == 0.0)
                continue;
            for (size_t c = col; c < n; c++)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }
    for (size_t col = n; col-- > 0;) {
        double acc = b[col];
        for (size_t c = col + 1; c < n; c++)
            acc -= a[col][c] * b[c];
        b[col] = acc / a[col][col];
    }
    return true;
}

} // namespace

double
PredictModel::predictMs(const PredictFeatures &f) const
{
    double z = intercept;
    for (int j = 0; j < kPredictFeatureCount; j++)
        z += weights[j] * (f.v[j] - mean[j]) / scale[j];
    const double ms = std::exp(z) - 1.0;
    return ms > 0.0 ? ms : 0.0;
}

std::optional<PredictModel>
trainPredictModel(const std::vector<PredictSample> &samples, double lambda)
{
    if (samples.empty())
        return std::nullopt;
    const size_t n = samples.size();
    constexpr int d = kPredictFeatureCount;

    PredictModel m;
    m.trainedSamples = n;
    m.ridgeLambda = lambda;
    m.mean.assign(d, 0.0);
    m.scale.assign(d, 1.0);
    m.weights.assign(d, 0.0);

    for (const PredictSample &s : samples)
        for (int j = 0; j < d; j++)
            m.mean[j] += s.features.v[j];
    for (int j = 0; j < d; j++)
        m.mean[j] /= static_cast<double>(n);
    std::vector<double> var(d, 0.0);
    for (const PredictSample &s : samples) {
        for (int j = 0; j < d; j++) {
            const double dlt = s.features.v[j] - m.mean[j];
            var[j] += dlt * dlt;
        }
    }
    for (int j = 0; j < d; j++) {
        const double sd = std::sqrt(var[j] / static_cast<double>(n));
        // Constant features (the bias, single-device sweeps' device
        // params) standardize to zero with scale 1 instead of dividing
        // by ~0; the ridge term keeps their weights at 0.
        m.scale[j] = sd > 1e-9 ? sd : 1.0;
    }

    // Normal equations on standardized X and centered log target.
    double yMean = 0.0;
    std::vector<double> ys(n);
    for (size_t i = 0; i < n; i++) {
        ys[i] = std::log1p(std::max(0.0, samples[i].measuredMs));
        yMean += ys[i];
    }
    yMean /= static_cast<double>(n);
    m.intercept = yMean;

    std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
    std::vector<double> xty(d, 0.0);
    std::vector<double> z(d);
    for (size_t i = 0; i < n; i++) {
        for (int j = 0; j < d; j++)
            z[j] = (samples[i].features.v[j] - m.mean[j]) / m.scale[j];
        const double yc = ys[i] - yMean;
        for (int j = 0; j < d; j++) {
            xty[j] += z[j] * yc;
            for (int k = j; k < d; k++)
                xtx[j][k] += z[j] * z[k];
        }
    }
    for (int j = 0; j < d; j++) {
        for (int k = 0; k < j; k++)
            xtx[j][k] = xtx[k][j];
        xtx[j][j] += lambda * static_cast<double>(n);
    }
    if (!solveLinear(xtx, xty)) {
        NPP_WARN("predict model: singular normal equations ({} samples); "
                 "no model produced",
                 n);
        return std::nullopt;
    }
    m.weights = std::move(xty);
    return m;
}

bool
savePredictModel(const PredictModel &model, const std::string &path)
{
    std::string payload;
    putU64(payload, model.trainedSamples);
    putF64(payload, model.ridgeLambda);
    putF64(payload, model.intercept);
    for (int j = 0; j < kPredictFeatureCount; j++)
        putF64(payload, model.mean[j]);
    for (int j = 0; j < kPredictFeatureCount; j++)
        putF64(payload, model.scale[j]);
    for (int j = 0; j < kPredictFeatureCount; j++)
        putF64(payload, model.weights[j]);

    std::string header;
    header.append(kModelMagic, sizeof kModelMagic);
    putU32(header, kPredictModelFormatVersion);
    putU32(header, model.featureVersion);
    putU32(header, kPredictFeatureCount);
    putU64(header, payload.size());
    putU64(header, fnvBytes(payload.data(), payload.size()));

    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    std::string tmpPath = dir + "/.nppmodel.XXXXXX";
    const int fd = ::mkstemp(tmpPath.data());
    if (fd < 0) {
        NPP_WARN("predict model: cannot create temp file in {} ({})", dir,
                 std::strerror(errno));
        return false;
    }
    const std::string all = header + payload;
    size_t off = 0;
    bool wrote = true;
    while (off < all.size()) {
        const ssize_t w = ::write(fd, all.data() + off, all.size() - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            wrote = false;
            break;
        }
        off += static_cast<size_t>(w);
    }
    ::close(fd);
    if (!wrote || std::rename(tmpPath.c_str(), path.c_str()) != 0) {
        NPP_WARN("predict model: cannot write {} ({})", path,
                 std::strerror(errno));
        ::unlink(tmpPath.c_str());
        return false;
    }
    return true;
}

std::optional<PredictModel>
loadPredictModel(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string data;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        data.append(buf, got);
    const bool readErr = std::ferror(f) != 0;
    std::fclose(f);
    if (readErr)
        return std::nullopt;

    Reader r{data.data(), data.size()};
    char magic[sizeof kModelMagic];
    if (!r.take(magic, sizeof magic) ||
        std::memcmp(magic, kModelMagic, sizeof magic) != 0)
        return std::nullopt;
    if (r.u32() != kPredictModelFormatVersion)
        return std::nullopt;
    const uint32_t featureVersion = r.u32();
    if (!r.ok || featureVersion != kPredictFeatureVersion)
        return std::nullopt;
    if (r.u32() != kPredictFeatureCount)
        return std::nullopt;
    const uint64_t payloadSize = r.u64();
    const uint64_t payloadFnv = r.u64();
    if (!r.ok || r.n - r.off != payloadSize)
        return std::nullopt;
    if (fnvBytes(r.p + r.off, payloadSize) != payloadFnv)
        return std::nullopt;

    PredictModel m;
    m.featureVersion = featureVersion;
    m.trainedSamples = r.u64();
    m.ridgeLambda = r.f64();
    m.intercept = r.f64();
    m.mean.resize(kPredictFeatureCount);
    m.scale.resize(kPredictFeatureCount);
    m.weights.resize(kPredictFeatureCount);
    for (int j = 0; j < kPredictFeatureCount; j++)
        m.mean[j] = r.f64();
    for (int j = 0; j < kPredictFeatureCount; j++)
        m.scale[j] = r.f64();
    for (int j = 0; j < kPredictFeatureCount; j++)
        m.weights[j] = r.f64();
    if (!r.ok || r.off != r.n)
        return std::nullopt;
    for (int j = 0; j < kPredictFeatureCount; j++) {
        if (!std::isfinite(m.mean[j]) || !std::isfinite(m.scale[j]) ||
            !std::isfinite(m.weights[j]) || m.scale[j] == 0.0)
            return std::nullopt;
    }
    if (!std::isfinite(m.intercept))
        return std::nullopt;
    return m;
}

std::string
formatPredictModel(const PredictModel &model)
{
    std::ostringstream os;
    os << fmt("predict model: feature schema v{}, {} features, trained "
              "on {} samples (ridge lambda={})\n",
              model.featureVersion, kPredictFeatureCount,
              model.trainedSamples, model.ridgeLambda);
    os << fmt("  intercept (mean log1p ms): {}\n",
              fixed(model.intercept, 6));
    const std::vector<std::string> &names = predictFeatureNames();
    for (int j = 0; j < kPredictFeatureCount; j++) {
        os << fmt("  [{}] {}  w={}  mean={}  scale={}\n", j,
                  padRight(names[j], 26), fixed(model.weights[j], 6),
                  fixed(model.mean[j], 4), fixed(model.scale[j], 4));
    }
    return os.str();
}

} // namespace npp
