#include "predict/predict.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "codegen/compile.h"
#include "support/env.h"
#include "support/logging.h"
#include "support/parallel.h"
#include "support/strings.h"
#include "support/trace.h"

namespace npp {

namespace {

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            // Mapping strings are printable ASCII; drop anything else
            // rather than emit invalid JSON.
            if (static_cast<unsigned char>(c) >= 0x20)
                out += c;
        }
    }
    out += "\"";
    return out;
}

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

/** Process-wide counters shared by PredictRuntime and the harvest
 *  observer (the observer outlives any particular sweep). */
std::mutex gRuntimeMutex;

} // namespace

PredictOptions
predictOptionsFromEnv()
{
    PredictOptions opts;
    opts.enabled = parseEnvBool("NPP_PREDICT", false);
    opts.topK = static_cast<int>(parseEnvInt(
        "NPP_PREDICT_TOPK", kPredictDefaultTopK, 1, kPredictUniverse));
    opts.sampleDir = parseEnvString("NPP_PREDICT_DIR");
    const std::string defaultModel =
        opts.sampleDir.empty() ? std::string()
                               : opts.sampleDir + "/model.nppprd";
    opts.modelPath = parseEnvString("NPP_PREDICT_MODEL", defaultModel);
    return opts;
}

std::string
PredictSweep::note() const
{
    std::ostringstream os;
    if (usedModel) {
        os << fmt("predict: model ranked {} candidates; simulated {} "
                  "(pruned {}); best {} at {} ms\n",
                  candidates.size(), survivors, pruned, best.toString(),
                  fixed(bestMs, 6));
    } else {
        os << fmt("predict: full sweep over {} candidates ({}); best {} "
                  "at {} ms\n",
                  candidates.size(),
                  fallbackReason.empty() ? "predictor disabled"
                                         : fallbackReason,
                  best.toString(), fixed(bestMs, 6));
    }
    return os.str();
}

std::string
PredictSweep::toJson() const
{
    std::ostringstream os;
    os << "{\"used_model\":" << (usedModel ? "true" : "false");
    if (!usedModel)
        os << ",\"fallback_reason\":" << jsonStr(fallbackReason);
    os << ",\"pruned\":" << pruned;
    os << ",\"survivors\":" << survivors;
    os << ",\"best\":" << jsonStr(best.toString());
    os << ",\"best_ms\":" << num(bestMs);
    os << ",\"candidates\":[";
    for (size_t i = 0; i < candidates.size(); i++) {
        const PredictCandidate &c = candidates[i];
        os << (i ? "," : "") << "{\"mapping\":"
           << jsonStr(c.decision.toString()) << ",\"score\":"
           << num(c.score) << ",\"predicted_ms\":" << num(c.predictedMs)
           << ",\"survived\":" << (c.survived ? "true" : "false")
           << ",\"score_choice\":" << (c.isScoreChoice ? "true" : "false");
        if (c.survived)
            os << ",\"exact_ms\":" << num(c.exactMs);
        os << "}";
    }
    os << "]}";
    return os.str();
}

PredictSweep
predictiveSweep(const Gpu &gpu, const Program &prog, const Bindings &args,
                CompileOptions base, const PredictModel *model, int topK)
{
    NPP_TRACE_SCOPE("predict.sweep");
    PredictSweep sweep;

    // Candidate universe: Algorithm 1's score ranking, score choice
    // first — the same pick list the autotuner evaluates exhaustively.
    base.strategy = Strategy::MultiDim;
    base.keepCandidates = true;
    CompileResult compiled = compileProgram(prog, gpu.config(), base);

    std::vector<ScoredMapping> cands = compiled.candidates;
    std::sort(cands.begin(), cands.end(),
              [](const ScoredMapping &a, const ScoredMapping &b) {
                  return a.score > b.score;
              });
    std::vector<ScoredMapping> picks;
    std::unordered_set<MappingDecision> seen;
    picks.push_back({compiled.spec.mapping, compiled.spec.score,
                     compiled.spec.dop, 0.0});
    seen.insert(compiled.spec.mapping);
    for (const auto &c : cands) {
        if (static_cast<int>(picks.size()) >= kPredictUniverse)
            break;
        if (seen.insert(c.decision).second)
            picks.push_back(c);
    }

    sweep.candidates.resize(picks.size());
    for (size_t i = 0; i < picks.size(); i++) {
        sweep.candidates[i].decision = picks[i].decision;
        sweep.candidates[i].score = picks[i].score;
        sweep.candidates[i].isScoreChoice = i == 0;
    }

    // Survivor selection: everything without a model; with one, rank by
    // predicted time and keep the top-k plus the score choice (so the
    // pruned sweep can never do worse than Algorithm 1 alone).
    const ExecOptions eopts; // the sweep's execution configuration
    if (model) {
        sweep.usedModel = true;
        for (size_t i = 0; i < picks.size(); i++) {
            const PredictFeatures f =
                extractFeatures(prog, picks[i].decision, gpu.config(),
                                eopts, base.paramValues);
            sweep.candidates[i].predictedMs = model->predictMs(f);
        }
        std::vector<size_t> order(picks.size());
        for (size_t i = 0; i < order.size(); i++)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return sweep.candidates[a].predictedMs <
                                    sweep.candidates[b].predictedMs;
                         });
        const int k = std::max(
            1, std::min(topK, static_cast<int>(picks.size())));
        for (int i = 0; i < k; i++)
            sweep.candidates[order[static_cast<size_t>(i)]].survived =
                true;
        sweep.candidates[0].survived = true; // score choice always
    } else {
        if (sweep.fallbackReason.empty())
            sweep.fallbackReason = "no model";
        for (PredictCandidate &c : sweep.candidates)
            c.survived = true;
    }

    // Exact simulation of the survivors, concurrently and through the
    // tiered cache (the harvest observer fires on every genuine miss).
    std::vector<size_t> evalIdx;
    for (size_t i = 0; i < sweep.candidates.size(); i++) {
        if (sweep.candidates[i].survived)
            evalIdx.push_back(i);
    }
    CompileOptions fixed = base;
    fixed.keepCandidates = false;
    fixed.explainSearch = false;
    fixed.strategy = Strategy::Fixed;
    std::vector<double> measuredMs = parallelMap<double>(
        static_cast<int64_t>(evalIdx.size()), [&](int64_t i) {
            CompileOptions copts = fixed;
            copts.fixedMapping =
                sweep.candidates[evalIdx[static_cast<size_t>(i)]].decision;
            return cachedCompileAndRun(gpu, prog, args, copts, eopts,
                                       /*wantOutputs=*/false)
                .totalMs;
        });

    // Serial fold in pick order: identical tie-breaking to the full
    // sweep, so pruned and full agree whenever the winner survives.
    bool haveBest = false;
    for (size_t i = 0; i < evalIdx.size(); i++) {
        PredictCandidate &c = sweep.candidates[evalIdx[i]];
        c.exactMs = measuredMs[i];
        if (!haveBest || c.exactMs < sweep.bestMs) {
            sweep.bestMs = c.exactMs;
            sweep.best = c.decision;
            haveBest = true;
        }
    }
    NPP_ASSERT(haveBest, "predictive sweep executed no candidates");

    sweep.survivors = static_cast<int64_t>(evalIdx.size());
    sweep.pruned =
        static_cast<int64_t>(sweep.candidates.size()) - sweep.survivors;
    NPP_TRACE_COUNT("predict.survivors",
                    static_cast<double>(sweep.survivors));
    NPP_TRACE_COUNT("predict.pruned", static_cast<double>(sweep.pruned));
    return sweep;
}

PredictRuntime &
PredictRuntime::instance()
{
    static PredictRuntime runtime;
    return runtime;
}

void
PredictRuntime::initFromEnv()
{
    const PredictOptions opts = predictOptionsFromEnv();
    {
        std::lock_guard<std::mutex> lock(gRuntimeMutex);
        opts_ = opts;
        model_.reset();
        if (!opts_.modelPath.empty()) {
            model_ = loadPredictModel(opts_.modelPath);
            if (opts_.enabled && !model_) {
                NPP_WARN("predict: no usable model at {} (missing, "
                         "corrupt, or stale schema); sweeps fall back "
                         "to full evaluation",
                         opts_.modelPath);
            }
        }
    }
    setSampleDir(opts.sampleDir);
}

void
PredictRuntime::setSampleDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(gRuntimeMutex);
    opts_.sampleDir = dir;
    if (dir.empty()) {
        writer_.reset();
        setExactEvalObserver({});
        return;
    }
    writer_ = std::make_shared<SampleWriter>(dir);
    // The observer holds its own reference: a later reconfigure never
    // invalidates a harvest already in flight.
    std::shared_ptr<SampleWriter> writer = writer_;
    setExactEvalObserver([writer](const ExactEvalInfo &info) {
        // Only evaluations whose executed mapping the call site could
        // name become training pairs, and sharded runs are excluded:
        // their times describe a fraction of the domain, which would
        // teach the model that partial launches are fast mappings.
        if (!info.mapping || !writer->enabled())
            return;
        if (info.eopts && info.eopts->sharded())
            return;
        PredictSample sample;
        sample.features = extractFeatures(
            *info.prog, *info.mapping, *info.device, *info.eopts,
            info.paramValues ? *info.paramValues
                             : std::unordered_map<int, double>{});
        sample.measuredMs = info.report->totalMs;
        writer->append(sample);
    });
}

void
PredictRuntime::setModel(std::optional<PredictModel> model)
{
    std::lock_guard<std::mutex> lock(gRuntimeMutex);
    model_ = std::move(model);
}

void
PredictRuntime::setEnabled(bool on, int topK)
{
    std::lock_guard<std::mutex> lock(gRuntimeMutex);
    opts_.enabled = on;
    opts_.topK = std::max(1, std::min(topK, kPredictUniverse));
}

bool
PredictRuntime::active() const
{
    std::lock_guard<std::mutex> lock(gRuntimeMutex);
    return opts_.enabled;
}

const PredictModel *
PredictRuntime::model() const
{
    std::lock_guard<std::mutex> lock(gRuntimeMutex);
    if (!opts_.enabled || !model_)
        return nullptr;
    return &*model_;
}

PredictSweep
PredictRuntime::sweep(const Gpu &gpu, const Program &prog,
                      const Bindings &args, const CompileOptions &base)
{
    bool enabled;
    int topK;
    // Snapshot the model by value: predictiveSweep runs long, and a
    // concurrent setModel must not invalidate the pointer mid-sweep.
    std::optional<PredictModel> model;
    {
        std::lock_guard<std::mutex> lock(gRuntimeMutex);
        enabled = opts_.enabled;
        topK = opts_.topK;
        if (enabled)
            model = model_;
    }
    PredictSweep result = predictiveSweep(
        gpu, prog, args, base, model ? &*model : nullptr, topK);
    if (!enabled && !result.usedModel)
        result.fallbackReason = "predictor disabled";
    {
        std::lock_guard<std::mutex> lock(gRuntimeMutex);
        pruned_ += static_cast<uint64_t>(result.pruned);
        survivors_ += static_cast<uint64_t>(result.survivors);
        if (result.usedModel)
            prunedSweeps_++;
        else
            fullSweeps_++;
    }
    return result;
}

PredictStats
PredictRuntime::stats() const
{
    PredictStats s;
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(gRuntimeMutex);
        s.enabled = opts_.enabled;
        s.topK = opts_.topK;
        if (model_) {
            s.modelVersion = model_->featureVersion;
            s.modelSamples = model_->trainedSamples;
        }
        s.pruned = pruned_;
        s.survivors = survivors_;
        s.prunedSweeps = prunedSweeps_;
        s.fullSweeps = fullSweeps_;
        s.samplesHarvested = writer_ ? writer_->appended() : 0;
        dir = opts_.sampleDir;
    }
    // The store scan walks files; do it outside the lock.
    s.sampleStoreRecords = dir.empty() ? 0 : countPredictSamples(dir);
    return s;
}

void
initPredictFromEnv()
{
    PredictRuntime::instance().initFromEnv();
}

std::string
predictStatsJson()
{
    const PredictStats s = PredictRuntime::instance().stats();
    std::ostringstream os;
    os << "{\"enabled\":" << (s.enabled ? "true" : "false");
    os << ",\"predict_model_version\":" << s.modelVersion;
    os << ",\"model_samples\":" << s.modelSamples;
    os << ",\"topk\":" << s.topK;
    os << ",\"predict_pruned\":" << s.pruned;
    os << ",\"predict_survivors\":" << s.survivors;
    os << ",\"pruned_sweeps\":" << s.prunedSweeps;
    os << ",\"full_sweeps\":" << s.fullSweeps;
    os << ",\"samples_harvested\":" << s.samplesHarvested;
    os << ",\"sample_store_records\":" << s.sampleStoreRecords;
    os << "}";
    return os.str();
}

} // namespace npp
