/**
 * @file
 * Deterministic feature extraction for the learned cost model: a fixed,
 * versioned vector of engineered features over (Program IR, mapping,
 * execution options, device). Everything is derived from structural
 * program properties — pattern kinds, per-level domain extents and
 * knownness, access-site strides, the candidate mapping's geometry, the
 * analytical model's estimate — never from pointers or addresses, so two
 * separately-built but structurally-identical programs featurize to
 * bit-identical vectors (enforced by tests/predict/features_test).
 *
 * The schema is versioned by kPredictFeatureVersion: any change to the
 * feature count, order, or derivation must bump it, and a persisted
 * model trained against a different version is rejected as "no model"
 * (the same staleness discipline the on-disk EvalCache tier applies via
 * kEvalCacheDiskFormatVersion).
 */

#ifndef NPP_PREDICT_FEATURES_H
#define NPP_PREDICT_FEATURES_H

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/mapping.h"
#include "ir/program.h"
#include "sim/executor.h"

namespace npp {

/** Bump on any change to the feature schema (count, order, derivation). */
inline constexpr uint32_t kPredictFeatureVersion = 1;

/** Number of features per sample (fixed by the schema version). */
inline constexpr int kPredictFeatureCount = 44;

/** One extracted feature vector. */
struct PredictFeatures
{
    std::array<double, kPredictFeatureCount> v{};
};

/** Schema: one short name per feature index, for `nppc show-predictor`
 *  and the model-inspection docs. Size == kPredictFeatureCount. */
const std::vector<std::string> &predictFeatureNames();

/**
 * Extract the feature vector for one (program, mapping) pair.
 *
 * `paramValues` supplies actual sizes when known (the same values the
 * compile pipeline sees); when absent the extraction falls back to the
 * program's size hints and finally the paper's default-size assumption,
 * exactly like the constraint builder. Deterministic: depends only on
 * structural program content and the argument values.
 */
PredictFeatures
extractFeatures(const Program &prog, const MappingDecision &mapping,
                const DeviceConfig &device, const ExecOptions &eopts,
                const std::unordered_map<int, double> &paramValues = {});

} // namespace npp

#endif // NPP_PREDICT_FEATURES_H
