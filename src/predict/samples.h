/**
 * @file
 * On-disk store of (feature vector, simulated time) training pairs,
 * harvested write-through from every exact simulation when
 * NPP_PREDICT_DIR points at a directory (the same alongside-the-cache
 * idea as NPP_EVAL_CACHE_DIR). Each process appends to its own
 * `samples-<pid>.nppsmp` file so concurrent sweeps never interleave
 * records; every record is individually checksummed and carries the
 * feature-schema version, so a reader skips (and counts) corrupt,
 * truncated, or stale-schema records instead of trusting them —
 * mirroring the eval cache's hostile-file discipline.
 */

#ifndef NPP_PREDICT_SAMPLES_H
#define NPP_PREDICT_SAMPLES_H

#include <cstdint>
#include <string>
#include <vector>

#include "predict/features.h"

namespace npp {

/** One labeled training pair. */
struct PredictSample
{
    PredictFeatures features;
    double measuredMs = 0.0;
};

/** What loadPredictSamples saw on disk. */
struct SampleLoadStats
{
    uint64_t files = 0;
    uint64_t records = 0;  //!< valid records loaded
    uint64_t rejected = 0; //!< corrupt/truncated/wrong-version records
};

/**
 * Append-only writer for one process. Thread-safe (sweeps harvest from
 * the parallel task pool); append failures warn once and disable the
 * writer — harvesting is an observer, never an error path.
 */
class SampleWriter
{
  public:
    /** Creates `dir` if missing; an empty dir disables the writer. */
    explicit SampleWriter(std::string dir);
    ~SampleWriter();

    SampleWriter(const SampleWriter &) = delete;
    SampleWriter &operator=(const SampleWriter &) = delete;

    bool enabled() const;

    /** Serialize + checksum + append one record. */
    void append(const PredictSample &sample);

    /** Records appended by this writer so far. */
    uint64_t appended() const;

  private:
    struct Impl;
    Impl *impl_;
};

/**
 * Read every `*.nppsmp` file under `dir` (lexicographic file order, so
 * training sees a deterministic sample order for a fixed directory
 * state). Invalid records are skipped and counted in `stats`.
 */
std::vector<PredictSample>
loadPredictSamples(const std::string &dir, SampleLoadStats *stats = nullptr);

/** Count valid records under `dir` without materializing them (the
 *  sample-store size reported by --stats and the serve stats request). */
uint64_t countPredictSamples(const std::string &dir);

} // namespace npp

#endif // NPP_PREDICT_SAMPLES_H
