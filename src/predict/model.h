/**
 * @file
 * The learned cost model: ridge regression (normal equations, plain
 * C++) over the engineered features of predict/features.h, fit to
 * log-scaled simulated times. Predictions are used only for *ranking*
 * candidates — the exact simulator remains the oracle for whatever
 * survives pruning — so a modest regressor that orders mappings
 * correctly is enough; absolute calibration is a non-goal.
 *
 * Persistence follows the eval cache's disk-entry discipline: a
 * versioned, checksummed binary file (magic, format version, feature
 * schema version, feature count, payload FNV-1a). Any mismatch —
 * truncation, bit rot, a schema bump, a renamed foreign file — makes
 * loadPredictModel return "no model", never a half-trusted one; callers
 * then fall back to the full sweep.
 */

#ifndef NPP_PREDICT_MODEL_H
#define NPP_PREDICT_MODEL_H

#include <optional>
#include <string>
#include <vector>

#include "predict/samples.h"

namespace npp {

/** Bump on any change to the serialized model layout. */
inline constexpr uint32_t kPredictModelFormatVersion = 1;

/** A trained ridge model (standardized features, log1p target). */
struct PredictModel
{
    uint32_t featureVersion = kPredictFeatureVersion;
    uint64_t trainedSamples = 0;
    double ridgeLambda = 0.0;

    /** Per-feature standardization (x - mean) / scale; scale 1 for
     *  constant features. Size == kPredictFeatureCount. */
    std::vector<double> mean;
    std::vector<double> scale;

    /** Weights over standardized features plus intercept (last). */
    std::vector<double> weights;
    double intercept = 0.0;

    /** Predicted milliseconds for one feature vector (inverse of the
     *  log1p target transform; clamped non-negative). */
    double predictMs(const PredictFeatures &f) const;
};

/**
 * Fit ridge regression on log1p(measuredMs). Deterministic for a fixed
 * sample order. Returns nullopt when there are no samples (nothing to
 * fit) — callers treat that exactly like a missing model file.
 */
std::optional<PredictModel>
trainPredictModel(const std::vector<PredictSample> &samples,
                  double lambda = 1e-3);

/** Serialize + atomically write the model file (temp + rename). Returns
 *  false with a warning on I/O failure. */
bool savePredictModel(const PredictModel &model, const std::string &path);

/** Load + validate a model file. Every failure mode — missing file,
 *  short header, bad magic, wrong format or feature-schema version,
 *  checksum mismatch, payload under/over-run — returns nullopt. */
std::optional<PredictModel> loadPredictModel(const std::string &path);

/** Human-readable model summary (nppc show-predictor). */
std::string formatPredictModel(const PredictModel &model);

} // namespace npp

#endif // NPP_PREDICT_MODEL_H
