#include "predict/features.h"

#include <cmath>

#include "analysis/consolidate.h"
#include "analysis/constraint.h"
#include "analysis/model.h"
#include "ir/traverse.h"
#include "support/logging.h"

namespace npp {

namespace {

double
log2p1(double v)
{
    return std::log2(v > 0 ? v + 1.0 : 1.0);
}

} // namespace

const std::vector<std::string> &
predictFeatureNames()
{
    static const std::vector<std::string> names = {
        "bias",
        "num_levels",
        "l0_size_log2",
        "l1_size_log2",
        "l0_must_span_all",
        "l1_must_span_all",
        "l0_splittable",
        "l1_splittable",
        "dynamic_inner_extent",
        "patterns_map",
        "patterns_zipwith",
        "patterns_foreach",
        "patterns_filter",
        "patterns_reduce",
        "patterns_groupby",
        "access_sites",
        "exec_count_log2",
        "traffic_bytes_log2",
        "write_fraction",
        "l0_unit_stride_fraction",
        "l1_unit_stride_fraction",
        "nonaffine_fraction",
        "l0_dim",
        "l0_block_log2",
        "l0_span_kind",
        "l0_span_factor_log2",
        "l1_dim",
        "l1_block_log2",
        "l1_span_kind",
        "l1_span_factor_log2",
        "threads_per_block_log2",
        "total_blocks_log2",
        "dop_log2",
        "model_total_ms_log2",
        "model_memory_ms_log2",
        "model_compute_ms_log2",
        "model_overhead_ms_log2",
        "model_transactions_log2",
        "device_num_sms",
        "device_warp_size",
        "device_max_threads_log2",
        "device_bandwidth_log2",
        "exec_max_sampled_log2",
        "exec_site_stats",
    };
    return names;
}

PredictFeatures
extractFeatures(const Program &prog, const MappingDecision &mapping,
                const DeviceConfig &device, const ExecOptions &eopts,
                const std::unordered_map<int, double> &paramValues)
{
    PredictFeatures f;
    auto &v = f.v;

    AnalysisEnv env;
    env.prog = &prog;
    env.paramValues = paramValues;
    const ConstraintSet cset = buildConstraints(prog, env, device);

    int i = 0;
    v[i++] = 1.0; // bias
    v[i++] = static_cast<double>(cset.numLevels);
    for (int lv = 0; lv < 2; lv++)
        v[i++] = lv < cset.numLevels ? log2p1(cset.levelSizes[lv]) : 0.0;
    for (int lv = 0; lv < 2; lv++)
        v[i++] = lv < cset.numLevels && cset.mustSpanAll[lv] ? 1.0 : 0.0;
    for (int lv = 0; lv < 2; lv++)
        v[i++] = lv < cset.numLevels && cset.splittable[lv] ? 1.0 : 0.0;
    v[i++] = hasDynamicInnerExtent(prog) ? 1.0 : 0.0;

    // Pattern-kind census (structural: pre-order IR walk, no addresses).
    double kinds[6] = {0, 0, 0, 0, 0, 0};
    for (const auto &[pat, level] : collectPatterns(prog.root())) {
        (void)level;
        kinds[static_cast<int>(pat->kind)] += 1.0;
    }
    for (double k : kinds)
        v[i++] = k;

    // Access-site summary: how much of the traffic is unit-stride along
    // each level (what the coalesce constraint rewards), how much is
    // written, how much resists the affine analysis entirely.
    double execTotal = 0.0, bytesTotal = 0.0, writeExec = 0.0;
    double unitStride[2] = {0.0, 0.0};
    double nonAffine = 0.0;
    for (const AccessSite &site : cset.accesses) {
        execTotal += site.execCount;
        bytesTotal += site.execCount * site.bytes;
        if (site.isWrite)
            writeExec += site.execCount;
        for (int lv = 0; lv < 2 && lv < cset.numLevels; lv++) {
            if (site.affine[lv] && std::abs(site.coeff[lv]) == 1.0)
                unitStride[lv] += site.execCount;
        }
        bool affineAll = true;
        for (int lv = 0; lv < cset.numLevels; lv++)
            affineAll = affineAll && site.affine[lv];
        if (!affineAll)
            nonAffine += site.execCount;
    }
    v[i++] = static_cast<double>(cset.accesses.size());
    v[i++] = log2p1(execTotal);
    v[i++] = log2p1(bytesTotal);
    v[i++] = execTotal > 0 ? writeExec / execTotal : 0.0;
    v[i++] = execTotal > 0 ? unitStride[0] / execTotal : 0.0;
    v[i++] = execTotal > 0 ? unitStride[1] / execTotal : 0.0;
    v[i++] = execTotal > 0 ? nonAffine / execTotal : 0.0;

    // Mapping parameters per level (-1 marks an absent level so a
    // 1-level mapping can never alias a 2-level one feature-wise).
    for (int lv = 0; lv < 2; lv++) {
        if (lv < mapping.numLevels()) {
            const LevelMapping &l = mapping.levels[lv];
            v[i++] = static_cast<double>(l.dim);
            v[i++] = log2p1(static_cast<double>(l.blockSize) - 1.0);
            v[i++] = static_cast<double>(l.span.kind);
            v[i++] = log2p1(static_cast<double>(l.span.factor) - 1.0);
        } else {
            v[i++] = -1.0;
            v[i++] = 0.0;
            v[i++] = -1.0;
            v[i++] = 0.0;
        }
    }

    std::vector<int64_t> sizes;
    for (int lv = 0; lv < cset.numLevels; lv++)
        sizes.push_back(
            std::max<int64_t>(1, std::llround(cset.levelSizes[lv])));
    const LaunchGeometry geom = makeGeometry(mapping, sizes);
    v[i++] = log2p1(static_cast<double>(mapping.threadsPerBlock()) - 1.0);
    v[i++] = log2p1(static_cast<double>(geom.totalBlocks) - 1.0);
    v[i++] = log2p1(mapping.dop(cset.levelSizes));

    // The analytical model's estimate is itself a feature: the regressor
    // learns a correction on top of the paper's static model rather than
    // rediscovering it from raw counts.
    const ModelEstimate est = staticEstimate(mapping, cset, device);
    v[i++] = log2p1(est.totalMs);
    v[i++] = log2p1(est.memoryMs);
    v[i++] = log2p1(est.computeMs);
    v[i++] = log2p1(est.overheadMs);
    v[i++] = log2p1(est.predictedTransactions);

    v[i++] = static_cast<double>(device.numSMs);
    v[i++] = static_cast<double>(device.warpSize);
    v[i++] = log2p1(static_cast<double>(device.maxThreadsPerBlock));
    v[i++] = log2p1(device.dramBandwidthGBs);

    v[i++] = log2p1(static_cast<double>(eopts.maxSampledBlocks));
    v[i++] = eopts.siteStats ? 1.0 : 0.0;

    NPP_ASSERT(i == kPredictFeatureCount,
               "feature schema drifted from kPredictFeatureCount");
    return f;
}

} // namespace npp
