/**
 * @file
 * Empirical autotuner over the mapping space. The paper notes that "our
 * mapping parameters can be used by other compilers or auto-tuners to
 * explore the mapping space" (Section IV-B) — this is that auto-tuner:
 * take the top-scoring hard-feasible candidates from Algorithm 1,
 * actually run each on the simulated device, and keep the fastest.
 *
 * The program must be re-runnable with the given bindings (outputs are
 * overwritten on every trial; in-place updates would corrupt — pass a
 * `reset` callback to restore state between trials if needed).
 */

#ifndef NPP_CODEGEN_AUTOTUNE_H
#define NPP_CODEGEN_AUTOTUNE_H

#include <functional>

#include "codegen/compile.h"
#include "runtime/binding.h"
#include "sim/metrics.h"

namespace npp {

class Gpu;

/** Options for the autotuner. */
struct AutotuneOptions
{
    /** Distinct top-scoring candidates to execute. */
    int topCandidates = 8;

    /** Called before every trial to restore input/output state (needed
     *  for programs that update arrays in place). Setting it forces the
     *  legacy serial functional trial loop: resets order trials, so
     *  they cannot run concurrently or metrics-only. */
    std::function<void()> reset;

    /** Evaluate trials concurrently (metrics-only, so the caller's
     *  buffers are untouched). Ignored when `reset` is set. Trial
     *  reports and the winning mapping are bit-identical to the serial
     *  path (tests/sim/determinism_test). */
    bool parallel = true;

    /** Route trials through the process-wide EvalCache so re-tuning the
     *  same (program, bindings) skips compile + simulation. Ignored
     *  when `reset` is set. */
    bool useCache = true;
};

/** One executed trial. */
struct AutotuneTrial
{
    MappingDecision decision;
    double score = 0.0;
    double measuredMs = 0.0;
};

/** Autotuning outcome. */
struct AutotuneResult
{
    /** The fastest measured spec, ready to run. */
    KernelSpec best;
    double bestMs = 0.0;

    /** Keeps a fusion-rewritten program alive for `best` (if any). */
    std::shared_ptr<Program> ownedProgram;

    /** What the pure score-based selection would have picked and cost. */
    MappingDecision scoreChoice;
    double scoreChoiceMs = 0.0;

    std::vector<AutotuneTrial> trials;
};

/**
 * Compile, enumerate, execute the top-scoring candidates, return the
 * empirically fastest mapping. `base.strategy` is ignored (the tuner
 * owns candidate selection).
 */
AutotuneResult autotune(const Program &prog, const Gpu &gpu,
                        const Bindings &args, CompileOptions base = {},
                        const AutotuneOptions &options = {});

} // namespace npp

#endif // NPP_CODEGEN_AUTOTUNE_H
