/**
 * @file
 * CUDA source generation (Section IV-E). The emitter renders a KernelSpec
 * — program IR plus mapping decision plus optimization plans — into CUDA
 * C source text using a per-pattern, per-mapping template set: span types
 * become the corresponding loop structures, parallelized reductions get
 * shared-memory tree combines, Split(k) levels additionally emit a
 * combiner kernel, and preallocated local arrays are addressed through
 * layout-specific offset/stride expressions.
 *
 * The emitted text is a faithful rendering of what the simulator
 * executes; structure tests and documentation consume it (we have no
 * CUDA toolchain in this environment).
 */

#ifndef NPP_CODEGEN_CUDA_EMIT_H
#define NPP_CODEGEN_CUDA_EMIT_H

#include <string>

#include "codegen/plan.h"

namespace npp {

/** Render the CUDA source for a compiled kernel spec (main kernel plus
 *  any combiner kernels and the launch stub). */
std::string emitCuda(const KernelSpec &spec);

} // namespace npp

#endif // NPP_CODEGEN_CUDA_EMIT_H
