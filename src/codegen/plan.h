/**
 * @file
 * Compiled kernel specification: the structured result of the compilation
 * pipeline (mapping analysis + optimizations) that both the CUDA emitter
 * renders to source text and the GPU simulator executes. This is the
 * "selected template + parameters" of Section IV-E.
 */

#ifndef NPP_CODEGEN_PLAN_H
#define NPP_CODEGEN_PLAN_H

#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/consolidate.h"
#include "analysis/mapping.h"
#include "analysis/search.h"
#include "ir/program.h"

namespace npp {

/**
 * How an inner-pattern array allocation is realized (Section V-A).
 */
struct LocalArrayPlan
{
    /** The ArrayLocal variable this plan covers. */
    int varId = -1;

    /** Level of the nested pattern that produces the array. */
    int definingLevel = 1;

    enum class Mode {
        /** Per-thread dynamic allocation inside the kernel (the naive
         *  translation; slow device-heap malloc per outer iteration). */
        ThreadMalloc,
        /** One preallocation for the whole kernel, regions assigned per
         *  outer iteration. */
        Prealloc
    };

    enum class Layout {
        /** Fig 11 (a): iteration m owns [m*N, (m+1)*N), stride 1.
         *  Coalesced when the defining (inner) level is dimension x. */
        Contiguous,
        /** Fig 11 (b): element j of iteration m lives at j*M + m,
         *  stride M. Coalesced when an enclosing level is dimension x. */
        Interleaved
    };

    Mode mode = Mode::Prealloc;
    Layout layout = Layout::Contiguous;

    /** True for Filter-produced locals: the allocation is the static
     *  upper bound but only a per-iteration prefix is valid, so the
     *  kernel plan gains a count/scan/scatter compaction finalize step
     *  (Section V-A applied to variable-size outputs). */
    bool variableSize = false;

    std::string toString() const;
};

/**
 * Everything needed to run (or render) one compiled program.
 */
struct KernelSpec
{
    const Program *prog = nullptr;

    MappingDecision mapping;

    /** Plans for every ArrayLocal in the program. */
    std::vector<LocalArrayPlan> locals;

    /** Read expressions served via shared-memory prefetching
     *  (Section V-B). The simulator keys its probe by the exprs'
     *  stable readSite ids, not by these addresses. */
    std::unordered_set<const Expr *> prefetchedSites;

    /** Shared memory bytes per block this spec requires (reduction
     *  scratch + prefetch staging). */
    int64_t sharedMemPerBlock = 0;

    /** Hand-written-style kernel: raw-pointer accesses (1 op) instead of
     *  the generated wrapper's index computation (2 ops). */
    bool rawPointers = false;

    /** Score/DOP diagnostics from the search (0 for preset mappings). */
    double score = 0.0;
    double dop = 0.0;

    /** Generated CUDA source for all kernels of this program. */
    std::string cudaSource;

    /** Multi-device placement chosen by the fleet search (sim/fleet.h);
     *  deviceCount 1 is the ordinary single-device launch. Carried on
     *  the spec so tools can print where the program would run. */
    struct FleetPlacement
    {
        int deviceCount = 1;
        int64_t splitPoint = -1;
        std::string verdict = "single device";
    };
    FleetPlacement fleet;

    /** Consolidated-queue organization (Strategy::Consolidate). When
     *  enabled, the emitter renders the bin-build prologue and the
     *  simulator runs queue-build + consumption phases; when disabled,
     *  verdict names why (eligibility reason). */
    ConsolidationPlan consolidation;

    /** Find the plan for a local array var (nullptr if none). */
    const LocalArrayPlan *localPlan(int varId) const;
};

} // namespace npp

#endif // NPP_CODEGEN_PLAN_H
