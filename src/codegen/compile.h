/**
 * @file
 * The compilation pipeline: mapping analysis (or a fixed strategy),
 * optimization passes, shared-memory budgeting, and CUDA emission,
 * producing a KernelSpec the simulator can execute.
 */

#ifndef NPP_CODEGEN_COMPILE_H
#define NPP_CODEGEN_COMPILE_H

#include "analysis/presets.h"
#include "codegen/plan.h"
#include "opt/prealloc.h"

namespace npp {

/** Mapping strategy selection. */
enum class Strategy {
    MultiDim,          //!< the paper's analysis (Algorithm 1)
    OneD,              //!< outer level only
    ThreadBlockThread, //!< Copperhead-style (Fig 7a)
    WarpBased,         //!< Hong et al. (Fig 7b)
    Fixed,             //!< caller-provided MappingDecision
    Consolidate        //!< runtime-sized inner domains via work queues
};

const char *strategyName(Strategy strategy);

/** Compilation options. */
struct CompileOptions
{
    Strategy strategy = Strategy::MultiDim;

    /** Used when strategy == Fixed. */
    MappingDecision fixedMapping;

    /** Used when strategy == Consolidate: one work queue per warp or per
     *  block (analysis/consolidate.h). Part of the EvalCache spec key —
     *  the two granularities launch different geometries. */
    BinGranularity binGranularity = BinGranularity::Warp;

    /** Section V-A switches. */
    PreallocOptions prealloc;

    /** Section V-B switch. */
    bool smemPrefetch = true;

    /** Actual parameter values known at compile time (improves the
     *  analysis sizes; optional). */
    std::unordered_map<int, double> paramValues;

    /** Retain the full scored candidate list (Fig 17). */
    bool keepCandidates = false;

    /** Produce the mapping-decision explanation (CompileResult::
     *  explanation): why the selected mapping won, per-constraint score
     *  contributions, tie-break tallies. Diagnostics only — cannot
     *  change the spec (excluded from the EvalCache key, like
     *  keepCandidates). */
    bool explainSearch = false;

    /** Ranking objective for the MultiDim search (soft-constraint score
     *  or the analytical time model). */
    SearchObjective objective = SearchObjective::SoftScore;

    /** Model a hand-written kernel: raw-pointer accesses without the
     *  generated wrapper's extra index arithmetic. */
    bool rawPointers = false;

    /** Vertical map-reduce fusion (opt/fusion.h): eliminate nested
     *  intermediate arrays consumed only by a following reduce. Off by
     *  default — the paper's Section V experiments study the
     *  materialized form. */
    bool fuseMapReduce = false;
};

/** Extended result: the spec plus search diagnostics. */
struct CompileResult
{
    KernelSpec spec;
    std::vector<ScoredMapping> candidates; //!< if keepCandidates
    ConstraintSet constraints;

    /** Why this mapping (if explainSearch). For the search strategies
     *  this is the full search report; for fixed strategies the
     *  candidate-space tallies are zero and only the selected mapping's
     *  checks/contributions are filled. */
    SearchExplanation explanation;

    /** When fusion rewrote the program, the spec points here instead of
     *  at the caller's program (same variable table, so bindings built
     *  against the original remain valid). */
    std::shared_ptr<Program> ownedProgram;

    /** Map-reduce pairs eliminated by fusion. */
    int fusedPatterns = 0;
};

/** Compile a program for a device. The program must outlive the spec. */
CompileResult compileProgram(const Program &prog,
                             const DeviceConfig &device,
                             const CompileOptions &options = {});

/** Levels containing a Reduce pattern (need smem combine when their
 *  block size exceeds 1). */
std::vector<int> reduceLevelsOf(const Program &prog);

} // namespace npp

#endif // NPP_CODEGEN_COMPILE_H
