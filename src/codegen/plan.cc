#include "codegen/plan.h"

#include "support/strings.h"

namespace npp {

std::string
LocalArrayPlan::toString() const
{
    return fmt("local v{} L{} {} {}", varId, definingLevel,
               mode == Mode::ThreadMalloc ? "malloc" : "prealloc",
               layout == Layout::Contiguous ? "contiguous" : "interleaved");
}

const LocalArrayPlan *
KernelSpec::localPlan(int varId) const
{
    for (const auto &plan : locals) {
        if (plan.varId == varId)
            return &plan;
    }
    return nullptr;
}

} // namespace npp
