#include "codegen/autotune.h"

#include <algorithm>
#include <unordered_set>

#include "sim/evalcache.h"
#include "sim/gpu.h"
#include "support/logging.h"
#include "support/parallel.h"
#include "support/trace.h"

namespace npp {

AutotuneResult
autotune(const Program &prog, const Gpu &gpu, const Bindings &args,
         CompileOptions base, const AutotuneOptions &options)
{
    NPP_TRACE_SCOPE("codegen.autotune");
    AutotuneResult result;

    base.strategy = Strategy::MultiDim;
    base.keepCandidates = true;
    CompileResult compiled = compileProgram(prog, gpu.config(), base);
    result.scoreChoice = compiled.spec.mapping;

    // Top-scoring distinct candidates, plus the score-based selection
    // itself (which ControlDOP may have rewritten beyond the raw list).
    std::vector<ScoredMapping> cands = compiled.candidates;
    std::sort(cands.begin(), cands.end(),
              [](const ScoredMapping &a, const ScoredMapping &b) {
                  return a.score > b.score;
              });
    std::vector<ScoredMapping> picks;
    std::unordered_set<MappingDecision> seen;
    picks.push_back({compiled.spec.mapping, compiled.spec.score,
                     compiled.spec.dop, 0.0});
    seen.insert(compiled.spec.mapping);
    for (const auto &c : cands) {
        if (static_cast<int>(picks.size()) > options.topCandidates)
            break;
        if (seen.insert(c.decision).second)
            picks.push_back(c);
    }

    CompileOptions fixed = base;
    fixed.keepCandidates = false;
    fixed.strategy = Strategy::Fixed;

    std::vector<double> measuredMs(picks.size(), 0.0);
    if (options.reset) {
        // Trials mutate caller state between reset() calls (in-place
        // programs), so they must run functionally and one at a time.
        for (size_t i = 0; i < picks.size(); i++) {
            options.reset();
            CompileOptions copts = fixed;
            copts.fixedMapping = picks[i].decision;
            CompileResult trial =
                compileProgram(prog, gpu.config(), copts);
            measuredMs[i] = gpu.run(trial.spec, args).totalMs;
        }
        options.reset();
    } else {
        // Metrics-only trials never write the caller's buffers, so they
        // are independent: evaluate concurrently (and through the cache,
        // which repeated tuning of the same program hits).
        const auto evalPick = [&](int64_t i) {
            CompileOptions copts = fixed;
            copts.fixedMapping = picks[static_cast<size_t>(i)].decision;
            ExecOptions eopts;
            if (options.useCache)
                return cachedCompileAndRun(gpu, prog, args, copts, eopts,
                                           /*wantOutputs=*/false)
                    .totalMs;
            eopts.metricsOnly = true;
            return gpu.compileAndRun(prog, args, copts, eopts).totalMs;
        };
        if (options.parallel) {
            measuredMs = parallelMap<double>(
                static_cast<int64_t>(picks.size()), evalPick);
        } else {
            for (size_t i = 0; i < picks.size(); i++)
                measuredMs[i] = evalPick(static_cast<int64_t>(i));
        }
    }

    // Serial fold in pick order: identical tie-breaking no matter how
    // the measurements were produced.
    double bestMs = 0.0;
    bool haveBest = false;
    size_t bestIdx = 0;
    for (size_t i = 0; i < picks.size(); i++) {
        AutotuneTrial record;
        record.decision = picks[i].decision;
        record.score = picks[i].score;
        record.measuredMs = measuredMs[i];
        result.trials.push_back(record);

        if (picks[i].decision == result.scoreChoice)
            result.scoreChoiceMs = measuredMs[i];
        if (!haveBest || measuredMs[i] < bestMs) {
            bestMs = measuredMs[i];
            bestIdx = i;
            haveBest = true;
        }
    }
    NPP_ASSERT(haveBest, "autotune executed no candidates");
    NPP_TRACE_COUNT("autotune.trials", static_cast<double>(picks.size()));
    result.bestMs = bestMs;

    fixed.fixedMapping = picks[bestIdx].decision;
    CompileResult winner = compileProgram(prog, gpu.config(), fixed);
    result.best = winner.spec;
    result.ownedProgram = winner.ownedProgram;
    return result;
}

} // namespace npp
