#include "codegen/autotune.h"

#include <algorithm>

#include "sim/gpu.h"
#include "support/logging.h"

namespace npp {

AutotuneResult
autotune(const Program &prog, const Gpu &gpu, const Bindings &args,
         CompileOptions base, const AutotuneOptions &options)
{
    AutotuneResult result;

    base.strategy = Strategy::MultiDim;
    base.keepCandidates = true;
    CompileResult compiled = compileProgram(prog, gpu.config(), base);
    result.scoreChoice = compiled.spec.mapping;

    // Top-scoring distinct candidates, plus the score-based selection
    // itself (which ControlDOP may have rewritten beyond the raw list).
    std::vector<ScoredMapping> cands = compiled.candidates;
    std::sort(cands.begin(), cands.end(),
              [](const ScoredMapping &a, const ScoredMapping &b) {
                  return a.score > b.score;
              });
    std::vector<ScoredMapping> picks;
    picks.push_back({compiled.spec.mapping, compiled.spec.score,
                     compiled.spec.dop, 0.0});
    for (const auto &c : cands) {
        if (static_cast<int>(picks.size()) >
            options.topCandidates) {
            break;
        }
        bool dup = false;
        for (const auto &p : picks)
            dup = dup || p.decision == c.decision;
        if (!dup)
            picks.push_back(c);
    }

    double bestMs = 0.0;
    bool haveBest = false;
    CompileOptions fixed = base;
    fixed.keepCandidates = false;
    fixed.strategy = Strategy::Fixed;
    for (const auto &pick : picks) {
        if (options.reset)
            options.reset();
        fixed.fixedMapping = pick.decision;
        CompileResult trial = compileProgram(prog, gpu.config(), fixed);
        SimReport report = gpu.run(trial.spec, args);

        AutotuneTrial record;
        record.decision = pick.decision;
        record.score = pick.score;
        record.measuredMs = report.totalMs;
        result.trials.push_back(record);

        if (pick.decision == result.scoreChoice)
            result.scoreChoiceMs = report.totalMs;
        if (!haveBest || report.totalMs < bestMs) {
            bestMs = report.totalMs;
            result.best = trial.spec;
            result.ownedProgram = trial.ownedProgram;
            haveBest = true;
        }
    }
    NPP_ASSERT(haveBest, "autotune executed no candidates");
    result.bestMs = bestMs;
    if (options.reset)
        options.reset();
    return result;
}

} // namespace npp
