#include "codegen/compile.h"

#include <set>

#include "codegen/cuda_emit.h"
#include "ir/traverse.h"
#include "opt/fusion.h"
#include "opt/smem.h"
#include "support/logging.h"
#include "support/strings.h"
#include "support/trace.h"

namespace npp {

const char *
strategyName(Strategy strategy)
{
    switch (strategy) {
      case Strategy::MultiDim: return "MultiDim";
      case Strategy::OneD: return "1D";
      case Strategy::ThreadBlockThread: return "ThreadBlock/Thread";
      case Strategy::WarpBased: return "Warp-based";
      case Strategy::Fixed: return "Fixed";
      case Strategy::Consolidate: return "Consolidate";
    }
    return "?";
}

std::vector<int>
reduceLevelsOf(const Program &prog)
{
    std::set<int> levels;
    for (const auto &[pattern, level] : collectPatterns(prog.root())) {
        if (pattern->kind == PatternKind::Reduce)
            levels.insert(level);
    }
    return {levels.begin(), levels.end()};
}

CompileResult
compileProgram(const Program &sourceProg, const DeviceConfig &device,
               const CompileOptions &options)
{
    NPP_TRACE_SCOPE("codegen.compile");
    NPP_TRACE_COUNT("compile.calls", 1);
    sourceProg.validate();

    CompileResult result;
    const Program *progPtr = &sourceProg;
    if (options.fuseMapReduce) {
        FusionResult fusion = fuseMapReduce(sourceProg);
        if (fusion.fused > 0) {
            // Re-validate: the rewrite produced fresh Stmt/Pattern nodes
            // (and some fresh Exprs) that still need trace-site ids; nodes
            // shared with sourceProg keep theirs.
            fusion.program->validate();
            result.ownedProgram = fusion.program;
            result.fusedPatterns = fusion.fused;
            progPtr = result.ownedProgram.get();
        }
    }
    const Program &prog = *progPtr;

    AnalysisEnv env;
    env.prog = &prog;
    env.paramValues = options.paramValues;

    result.constraints = buildConstraints(prog, env, device);

    const int levels = prog.numLevels();
    MappingDecision mapping;
    switch (options.strategy) {
      case Strategy::MultiDim: {
        SearchOptions sopts;
        sopts.preallocLayouts = options.prealloc.enable &&
                                options.prealloc.layoutFromMapping;
        sopts.keepCandidates = options.keepCandidates;
        sopts.objective = options.objective;
        sopts.explain = options.explainSearch;
        MappingSearch search(device, sopts);
        SearchResult sres = search.search(result.constraints);
        mapping = sres.best;
        result.spec.score = sres.bestScore;
        result.spec.dop = sres.bestDop;
        result.candidates = std::move(sres.candidates);
        result.explanation = std::move(sres.explanation);
        break;
      }
      case Strategy::OneD: {
        // Same compiler, same search — restricted to the outer level
        // (Section VI-C: "a directive that forces the compiler to
        // ignore all but the outermost level of parallelism").
        SearchOptions sopts;
        sopts.preallocLayouts = options.prealloc.enable &&
                                options.prealloc.layoutFromMapping;
        sopts.outerOnly = true;
        sopts.explain = options.explainSearch;
        MappingSearch search(device, sopts);
        SearchResult sres = search.search(result.constraints);
        mapping = sres.best;
        result.spec.score = sres.bestScore;
        result.spec.dop = sres.bestDop;
        result.explanation = std::move(sres.explanation);
        break;
      }
      case Strategy::ThreadBlockThread:
        mapping = threadBlockThreadMapping(levels, device);
        break;
      case Strategy::WarpBased:
        mapping = warpBasedMapping(levels, device);
        break;
      case Strategy::Consolidate: {
        // Run the full search first so an ineligible program still
        // compiles to the best static mapping — the verdict names why
        // consolidation did not engage.
        SearchOptions sopts;
        sopts.preallocLayouts = options.prealloc.enable &&
                                options.prealloc.layoutFromMapping;
        sopts.keepCandidates = options.keepCandidates;
        sopts.objective = options.objective;
        sopts.explain = options.explainSearch;
        MappingSearch search(device, sopts);
        SearchResult sres = search.search(result.constraints);
        mapping = sres.best;
        result.spec.score = sres.bestScore;
        result.spec.dop = sres.bestDop;
        result.candidates = std::move(sres.candidates);
        result.explanation = std::move(sres.explanation);

        ConsolidationPlan &plan = result.spec.consolidation;
        const std::string reason = consolidationEligibility(prog);
        if (reason.empty()) {
            plan.enabled = true;
            plan.granularity = options.binGranularity;
            plan.binLanes = options.binGranularity == BinGranularity::Warp
                                ? device.warpSize
                                : 256;
            plan.verdict = fmt("consolidated: {}-bin queues, {} lanes "
                               "per group",
                               binGranularityName(plan.granularity),
                               plan.binLanes);
            mapping = consolidatedMapping(plan.binLanes);
            result.spec.dop =
                mapping.dop(result.constraints.levelSizes);
        } else {
            plan.verdict = "not consolidated: " + reason;
        }
        break;
      }
      case Strategy::Fixed:
        mapping = options.fixedMapping;
        // Applications mix programs of different depths (e.g. Gaussian's
        // one-level Fan1 next to the two-level Fan2); adapt the fixed
        // mapping rather than forcing callers to supply one per program.
        if (mapping.numLevels() > levels) {
            if (levels == 1) {
                mapping = oneDMapping(1, device);
            } else {
                mapping.levels.resize(levels);
            }
        } else {
            while (mapping.numLevels() < levels) {
                uint32_t used = 0;
                for (const auto &l : mapping.levels)
                    used |= 1u << l.dim;
                int dim = 0;
                while (used & (1u << dim))
                    dim++;
                LevelMapping seq;
                seq.dim = dim;
                seq.blockSize = 1;
                seq.span = SpanType::all();
                mapping.levels.push_back(seq);
            }
        }
        break;
    }
    if (options.strategy != Strategy::MultiDim &&
        options.strategy != Strategy::OneD &&
        options.strategy != Strategy::Consolidate) {
        applyHardSpans(mapping, result.constraints);
        MappingSearch scorer(device);
        result.spec.score = scorer.score(mapping, result.constraints);
        result.spec.dop = mapping.dop(result.constraints.levelSizes);
        if (options.explainSearch) {
            // Fixed strategies skip the search, but the selected
            // mapping's checks and contributions are still explainable.
            result.explanation.valid = true;
            result.explanation.selected =
                scorer.explain(mapping, result.constraints);
        }
    }

    KernelSpec &spec = result.spec;
    spec.prog = &prog;
    spec.mapping = mapping;
    spec.rawPointers = options.rawPointers;
    spec.locals = planLocalArrays(prog, mapping, options.prealloc);

    if (options.smemPrefetch) {
        PrefetchPlan prefetch = findPrefetchable(prog, mapping, env);
        spec.prefetchedSites = std::move(prefetch.sites);
        spec.sharedMemPerBlock += prefetch.sharedBytes;
    }

    // Reduction scratch: one slot per thread for each parallel reduce
    // level (Fig 9's smem array).
    for (int lv : reduceLevelsOf(prog)) {
        if (mapping.levels[lv].blockSize > 1)
            spec.sharedMemPerBlock += mapping.threadsPerBlock() * 8;
    }
    if (spec.sharedMemPerBlock > device.sharedMemPerBlockLimit) {
        NPP_WARN("{}: spec needs {} B shared memory, device limit {} B",
                 prog.name(), spec.sharedMemPerBlock,
                 device.sharedMemPerBlockLimit);
    }

    spec.cudaSource = emitCuda(spec);
    return result;
}

} // namespace npp
