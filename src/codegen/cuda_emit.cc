#include "codegen/cuda_emit.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "support/logging.h"
#include "support/strings.h"

namespace npp {

namespace {

const char *
cudaDim(int dim)
{
    // CUDA exposes three hardware dims; a fourth logical dim would be
    // linearized onto z (not needed by any current workload).
    static const char *names[] = {"x", "y", "z", "z"};
    NPP_ASSERT(dim >= 0 && dim < 4, "bad dim {}", dim);
    return names[dim];
}

/** Emitter state for one program. */
class Emitter
{
  public:
    explicit Emitter(const KernelSpec &spec)
        : spec(spec), prog(*spec.prog)
    {
        scanReduceLevels(prog.root(), 0);
    }

    void
    scanReduceLevels(const Pattern &p, int lv)
    {
        if (p.kind == PatternKind::Reduce)
            reduceLevels.insert(lv);
        for (const auto &s : p.body) {
            if (s->kind == StmtKind::Nested)
                scanReduceLevels(*s->pattern, lv + 1);
        }
    }

    std::string
    run()
    {
        header();
        kernel();
        if (needsCombiner())
            combinerKernel();
        if (needsCompaction())
            compactKernels();
        launchStub();
        return os.str();
    }

  private:
    //
    // Small helpers
    //

    std::string
    varName(int id) const
    {
        return prog.var(id).name;
    }

    void
    line(const std::string &text)
    {
        os << repeat("    ", indent) << text << "\n";
    }

    void
    open(const std::string &text)
    {
        line(text + " {");
        indent++;
    }

    void
    close()
    {
        indent--;
        line("}");
    }

    bool
    needsCombiner() const
    {
        for (const auto &l : spec.mapping.levels) {
            if (l.span.kind == SpanKind::Split)
                return true;
        }
        return false;
    }

    bool
    needsCompaction() const
    {
        for (const auto &plan : spec.locals) {
            if (plan.variableSize)
                return true;
        }
        return false;
    }

    /** Render an expression as CUDA C. */
    std::string
    expr(const ExprRef &e)
    {
        NPP_ASSERT(e != nullptr, "emit of null expr");
        switch (e->kind) {
          case ExprKind::Lit:
            if (e->type == ScalarKind::I64)
                return fmt("{}LL", static_cast<long long>(e->lit));
            return fmt("{}", e->lit);
          case ExprKind::Var:
            return varName(e->varId);
          case ExprKind::Binary:
            switch (e->op) {
              case Op::Min:
                return fmt("min({}, {})", expr(e->a), expr(e->b));
              case Op::Max:
                return fmt("max({}, {})", expr(e->a), expr(e->b));
              case Op::Pow:
                return fmt("pow({}, {})", expr(e->a), expr(e->b));
              case Op::Mod:
                return fmt("(({}) % ({}))", expr(e->a), expr(e->b));
              default:
                return fmt("({} {} {})", expr(e->a), opName(e->op),
                           expr(e->b));
            }
          case ExprKind::Unary:
            switch (e->op) {
              case Op::Neg:
                return fmt("(-{})", expr(e->a));
              case Op::Not:
                return fmt("(!{})", expr(e->a));
              default:
                return fmt("{}({})", opName(e->op), expr(e->a));
            }
          case ExprKind::Select:
            return fmt("({} ? {} : {})", expr(e->a), expr(e->b),
                       expr(e->c));
          case ExprKind::Read:
            return readExpr(*e);
        }
        NPP_PANIC("unknown expr kind");
    }

    std::string
    readExpr(const Expr &e)
    {
        if (spec.prefetchedSites.count(&e)) {
            // Served from the shared-memory staging buffer filled by the
            // prefetch prologue (indexed by the lane of its level).
            return fmt("smem_{}[{} % blockDim.{}]", varName(e.varId),
                       expr(e.a), prefetchDim);
        }
        const LocalArrayPlan *plan = spec.localPlan(e.varId);
        if (plan)
            return fmt("{}[{}]", varName(e.varId), localIndex(*plan, e.a));
        return fmt("{}[{}]", varName(e.varId), expr(e.a));
    }

    /** Physical index for a preallocated / malloc'd local array. */
    std::string
    localIndex(const LocalArrayPlan &plan, const ExprRef &logical)
    {
        return localIndexText(plan, expr(logical));
    }

    /** Same, for an index that is already CUDA text (compaction cursors
     *  and seed loops have no IR expression to render). */
    std::string
    localIndexText(const LocalArrayPlan &plan, const std::string &logical)
    {
        if (plan.mode == LocalArrayPlan::Mode::ThreadMalloc)
            return logical;
        if (plan.layout == LocalArrayPlan::Layout::Contiguous)
            return fmt("__row_{} + ({})", varName(plan.varId), logical);
        return fmt("__col_{} + ({}) * __stride_{}", varName(plan.varId),
                   logical, varName(plan.varId));
    }

    //
    // Sections
    //

    void
    header()
    {
        os << "// Generated by nppmap (locality-aware nested pattern "
              "mapping)\n";
        os << "// program: " << prog.name() << "\n";
        for (int lv = 0; lv < spec.mapping.numLevels(); lv++) {
            os << "// Level " << lv << ": "
               << spec.mapping.levels[lv].toString() << "\n";
        }
        for (const auto &plan : spec.locals)
            os << "// " << plan.toString() << "\n";
        if (!spec.prefetchedSites.empty()) {
            os << "// shared-memory prefetch: " << spec.prefetchedSites.size()
               << " site(s)\n";
        }
        if (spec.consolidation.enabled)
            os << "// " << spec.consolidation.verdict << "\n";
        os << "\n";
    }

    std::string
    paramList()
    {
        std::vector<std::string> params;
        for (const auto &v : prog.vars()) {
            if (v.role == VarRole::ScalarParam) {
                params.push_back(fmt("{} {}", cudaTypeName(v.kind),
                                     v.name));
            } else if (v.role == VarRole::ArrayParam) {
                params.push_back(fmt("{}{} *{}",
                                     v.isOutput ? "" : "const ",
                                     cudaTypeName(v.kind), v.name));
            } else if (v.role == VarRole::ArrayLocal &&
                       spec.localPlan(v.id) &&
                       spec.localPlan(v.id)->mode ==
                           LocalArrayPlan::Mode::Prealloc) {
                params.push_back(fmt("{} *{} /* preallocated */",
                                     cudaTypeName(v.kind), v.name));
            }
        }
        for (const auto &plan : spec.locals) {
            if (plan.variableSize) {
                params.push_back(fmt("long long *__counts_{}",
                                     varName(plan.varId)));
            }
        }
        if (needsCombiner())
            params.push_back("double *__partials");
        return join(params, ", ");
    }

    void
    kernel()
    {
        if (spec.consolidation.enabled) {
            consolidatedKernel();
            return;
        }
        open(fmt("__global__ void {}_kernel({})", prog.name(),
                 paramList()));

        // Shared memory declarations.
        for (int lv = 0; lv < spec.mapping.numLevels(); lv++) {
            if (levelIsParallelReduce(lv)) {
                line(fmt("__shared__ double red_smem_{}[{}];", lv,
                         spec.mapping.threadsPerBlock()));
            }
        }
        emitPrefetchDecls();

        emitPattern(prog.root(), 0, /*isRoot=*/true);
        close();
        os << "\n";
    }

    /**
     * Consolidated emission for a runtime-sized inner domain. A group of
     * L lanes serves L parents; their variable-length child domains
     * concatenate into one parent-major queue consumed in full waves of
     * L. Three phases, mirroring the exact simulator's consolidated
     * path (sim/executor.cc): bin-build prologue (per-parent extent
     * gather + exclusive scan laying out the queue offsets),
     * consolidated consumption (every wave runs L contiguous queue
     * entries, so no lane idles on a short parent), and a per-parent
     * finalize that runs the epilogue and stores the root yield.
     */
    void
    consolidatedKernel()
    {
        const Pattern &root = prog.root();
        const int64_t L = spec.consolidation.binLanes;
        const bool warpBin =
            spec.consolidation.granularity == BinGranularity::Warp;

        // Slice the root body the way the executor does: scalar
        // prologue (queue-carried lets), the single dynamic nested
        // pattern, epilogue.
        std::vector<const Stmt *> prefix, suffix;
        const Stmt *nestedStmt = nullptr;
        for (const auto &s : root.body) {
            if (s->kind == StmtKind::Nested)
                nestedStmt = s.get();
            else if (!nestedStmt)
                prefix.push_back(s.get());
            else
                suffix.push_back(s.get());
        }
        NPP_ASSERT(nestedStmt,
                   "consolidated kernel without a nested pattern");
        const Pattern &inner = *nestedStmt->pattern;

        // Prologue scalars the queue carries across phases.
        std::vector<int> carried;
        for (const Stmt *s : prefix)
            if (s->kind == StmtKind::Let)
                carried.push_back(s->var);

        open(fmt("__global__ void {}_kernel({})", prog.name(),
                 paramList()));
        line(fmt("// consolidation: {}-bin queues, {} lanes per group",
                 binGranularityName(spec.consolidation.granularity), L));
        line(fmt("__shared__ long long __q_off[{}]; // exclusive scan "
                 "of the group's extents",
                 L + 1));
        for (int v : carried) {
            line(fmt("__shared__ {} __carry_{}[{}];",
                     cudaTypeName(prog.var(v).kind), varName(v), L));
        }
        if (inner.kind == PatternKind::Reduce)
            line(fmt("__shared__ double __bin_acc[{}];", L));
        line(fmt("const long long __group_lo = (long long)blockIdx.x * "
                 "{};",
                 L));
        line("const int __bin_lane = (int)threadIdx.x;");

        line("// --- bin-build prologue: gather each parent's extent ---");
        line("long long __extent = 0;");
        open(fmt("if (__group_lo + __bin_lane < {})", expr(root.size)));
        line(fmt("const long long {} = __group_lo + __bin_lane;",
                 varName(root.indexVar)));
        for (const Stmt *s : prefix)
            emitStmt(*s, 0);
        line(fmt("__extent = max(0LL, (long long)({}));",
                 expr(inner.size)));
        for (int v : carried) {
            line(fmt("__carry_{}[__bin_lane] = {};", varName(v),
                     varName(v)));
        }
        if (inner.kind == PatternKind::Reduce) {
            line(fmt("__bin_acc[__bin_lane] = {};",
                     combinerIdentity(inner.combiner)));
        }
        close();

        if (warpBin) {
            line("// queue offsets: warp-wide exclusive scan (shuffle)");
            line("long long __incl = __extent;");
            open(fmt("for (int __s = 1; __s < {}; __s <<= 1)", L));
            line("const long long __up = __shfl_up_sync(0xffffffffu, "
                 "__incl, __s);");
            line("if (__bin_lane >= __s) __incl += __up;");
            close();
            line("__q_off[__bin_lane] = __incl - __extent;");
            line(fmt("if (__bin_lane == {}) __q_off[{}] = __incl;", L - 1,
                     L));
            line("__syncwarp();");
        } else {
            line("// queue offsets: block-wide exclusive scan in shared "
                 "memory");
            line("__q_off[__bin_lane] = __extent;");
            line("__syncthreads();");
            open(fmt("for (int __s = 1; __s < {}; __s <<= 1)", L));
            line("const long long __up = __bin_lane >= __s ? "
                 "__q_off[__bin_lane - __s] : 0;");
            line("__syncthreads();");
            line("__q_off[__bin_lane] += __up;");
            line("__syncthreads();");
            close();
            line("const long long __incl = __q_off[__bin_lane];");
            line("__syncthreads();");
            line("__q_off[__bin_lane] = __incl - __extent;");
            line(fmt("if (__bin_lane == {}) __q_off[{}] = __incl;", L - 1,
                     L));
            line("__syncthreads();");
        }
        line(fmt("const long long __entries = __q_off[{}];", L));

        line("// --- consolidated consumption: full waves of the queue "
             "---");
        open(fmt("for (long long __q = __bin_lane; __q < __entries; __q "
                 "+= {})",
                 L));
        line("// owner search: the parent whose queue slice holds __q");
        line(fmt("int __plo = 0, __phi = {};", L));
        open("while (__phi - __plo > 1)");
        line("const int __mid = (__plo + __phi) >> 1;");
        line("if (__q_off[__mid] <= __q) __plo = __mid; else __phi = "
             "__mid;");
        close();
        line(fmt("const long long {} = __group_lo + __plo;",
                 varName(root.indexVar)));
        for (int v : carried) {
            const VarInfo &vi = prog.var(v);
            line(fmt("{}{} {} = __carry_{}[__plo];",
                     vi.isMutable ? "" : "const ",
                     cudaTypeName(vi.kind), vi.name, vi.name));
        }
        line(fmt("const long long {} = __q - __q_off[__plo];",
                 varName(inner.indexVar)));
        emitStmts(inner.body, 1);
        if (inner.kind == PatternKind::Reduce) {
            line(fmt("atomic{}(&__bin_acc[__plo], {});",
                     inner.combiner == Op::Add ? "Add" : "CombineCAS",
                     expr(inner.yield)));
        }
        close();
        line(warpBin ? "__syncwarp();" : "__syncthreads();");

        line("// --- finalize: one lane per parent runs the epilogue ---");
        open(fmt("if (__group_lo + __bin_lane < {})", expr(root.size)));
        line(fmt("const long long {} = __group_lo + __bin_lane;",
                 varName(root.indexVar)));
        for (int v : carried) {
            const VarInfo &vi = prog.var(v);
            line(fmt("{}{} {} = __carry_{}[__bin_lane];",
                     vi.isMutable ? "" : "const ",
                     cudaTypeName(vi.kind), vi.name, vi.name));
        }
        if (inner.kind == PatternKind::Reduce && nestedStmt->var >= 0) {
            line(fmt("const double {} = __bin_acc[__bin_lane];",
                     varName(nestedStmt->var)));
        }
        for (const Stmt *s : suffix)
            emitStmt(*s, 0);
        if (root.kind == PatternKind::Map ||
            root.kind == PatternKind::ZipWith) {
            line(fmt("{}[{}] = {};", varName(prog.rootOutput()),
                     varName(root.indexVar), expr(root.yield)));
        }
        close();

        close();
        os << "\n";
    }

    bool
    levelIsParallelReduce(int lv) const
    {
        // A reduce level with more than one thread in its dim needs the
        // shared-memory combine.
        if (lv >= spec.mapping.numLevels())
            return false;
        const LevelMapping &l = spec.mapping.levels[lv];
        return reduceLevels.count(lv) > 0 && l.blockSize > 1;
    }

    void
    emitPrefetchDecls()
    {
        if (spec.prefetchedSites.empty())
            return;
        // One staging buffer per prefetched array (merged by array).
        std::unordered_set<int> arrays;
        for (const Expr *e : sortedPrefetchSites()) {
            if (arrays.insert(e->varId).second) {
                line(fmt("__shared__ {} smem_{}[{}];",
                         cudaTypeName(prog.var(e->varId).kind),
                         varName(e->varId), prefetchLanes()));
            }
        }
    }

    /** Prefetched reads in stable readSite order, so the emitted CUDA
     *  text does not depend on hash-set iteration order. */
    std::vector<const Expr *>
    sortedPrefetchSites() const
    {
        std::vector<const Expr *> sites(spec.prefetchedSites.begin(),
                                        spec.prefetchedSites.end());
        std::sort(sites.begin(), sites.end(),
                  [](const Expr *a, const Expr *b) {
                      return a->readSite < b->readSite;
                  });
        return sites;
    }

    int64_t
    prefetchLanes() const
    {
        // The staging chunk covers the block's lanes in the prefetched
        // level's dim; sized conservatively to the block's thread count.
        int64_t lanes = 1;
        for (const auto &l : spec.mapping.levels)
            if (l.dim != 0)
                lanes *= l.blockSize;
        return std::max<int64_t>(lanes, 1);
    }

    /** Loop header(s) establishing this level's index, per span type. */
    void
    openLevel(const Pattern &p, int lv, bool &needsClose, bool &hasGuard)
    {
        const LevelMapping &l = spec.mapping.levels[lv];
        const char *d = cudaDim(l.dim);
        const std::string idx = varName(p.indexVar);
        const std::string size = expr(p.size);
        needsClose = false;
        hasGuard = false;

        switch (l.span.kind) {
          case SpanKind::One:
            line(fmt("long long {} = blockIdx.{} * blockDim.{} + "
                     "threadIdx.{};",
                     idx, d, d, d));
            open(fmt("if ({} < {})", idx, size));
            needsClose = true;
            hasGuard = true;
            break;
          case SpanKind::N:
            open(fmt("for (long long __k{} = 0; __k{} < {}; __k{}++)", lv,
                     lv, l.span.factor, lv));
            line(fmt("long long {} = (blockIdx.{} * {} + __k{}) * "
                     "blockDim.{} + threadIdx.{};",
                     idx, d, l.span.factor, lv, d, d));
            open(fmt("if ({} < {})", idx, size));
            needsClose = true; // closes the guard; loop closed separately
            hasGuard = true;
            levelLoops.push_back(lv);
            break;
          case SpanKind::All:
            open(fmt("for (long long {} = threadIdx.{}; {} < {}; {} += "
                     "blockDim.{})",
                     idx, d, idx, size, idx, d));
            needsClose = true;
            break;
          case SpanKind::Split:
            line(fmt("long long __seg{} = ({} + {} - 1) / {};", lv, size,
                     l.span.factor, l.span.factor));
            line(fmt("long long __end{} = min((blockIdx.{} + 1) * __seg{}, "
                     "(long long){});",
                     lv, d, lv, size));
            open(fmt("for (long long {} = blockIdx.{} * __seg{} + "
                     "threadIdx.{}; {} < __end{}; {} += blockDim.{})",
                     idx, d, lv, d, idx, lv, idx, d));
            needsClose = true;
            break;
        }
    }

    void
    emitPattern(const Pattern &p, int lv, bool isRoot)
    {
        const LevelMapping &l = spec.mapping.levels[lv];
        std::string acc;
        if (p.kind == PatternKind::Reduce) {
            acc = isRoot ? "__root_acc" : fmt("__acc_{}", lv);
            line(fmt("double {} = {};", acc,
                     combinerIdentity(p.combiner)));
        }
        if (isRoot && p.kind == PatternKind::Filter)
            line("// filter: kept elements compact via atomic cursor");

        bool needsClose = false, hasGuard = false;
        openLevel(p, lv, needsClose, hasGuard);

        emitPrefetchFill(lv);
        emitStmts(p.body, lv);

        // Per-iteration tail: yield handling.
        switch (p.kind) {
          case PatternKind::Map:
          case PatternKind::ZipWith: {
            if (isRoot) {
                // Guard the store to one lane of every inner parallel
                // dimension (Fig 9 line 15).
                std::vector<std::string> guards;
                for (int inner = lv + 1; inner < spec.mapping.numLevels();
                     inner++) {
                    const LevelMapping &il = spec.mapping.levels[inner];
                    if (il.blockSize > 1) {
                        guards.push_back(fmt("threadIdx.{} == 0",
                                             cudaDim(il.dim)));
                    }
                }
                const bool guarded = !guards.empty();
                if (guarded)
                    open(fmt("if ({})", join(guards, " && ")));
                line(fmt("{}[{}] = {};", varName(prog.rootOutput()),
                         varName(p.indexVar), expr(p.yield)));
                if (guarded)
                    close();
            }
            break;
          }
          case PatternKind::Reduce:
            line(fmt("{} = {};", acc,
                     combineText(p.combiner, acc, expr(p.yield))));
            break;
          case PatternKind::Foreach:
            break;
          case PatternKind::Filter:
            open(fmt("if ({})", expr(p.filterPred)));
            line(fmt("long long __slot = atomicAdd(&__filter_cursor, 1);"));
            line(fmt("{}[__slot] = {};", varName(prog.rootOutput()),
                     expr(p.yield)));
            close();
            break;
          case PatternKind::GroupBy:
            line(fmt("atomic{}(&{}[(long long)({})], {});",
                     p.combiner == Op::Add ? "Add" : "CombineCAS",
                     varName(prog.rootOutput()), expr(p.key),
                     expr(p.yield)));
            break;
        }

        if (needsClose)
            close();
        // Close the span(n) outer loop if any.
        if (l.span.kind == SpanKind::N)
            close();

        if (p.kind == PatternKind::Reduce)
            emitReduceCombine(p, lv, acc, isRoot);
    }

    std::string
    combineText(Op op, const std::string &a, const std::string &b)
    {
        switch (op) {
          case Op::Add: return fmt("{} + {}", a, b);
          case Op::Mul: return fmt("{} * {}", a, b);
          case Op::Min: return fmt("min({}, {})", a, b);
          case Op::Max: return fmt("max({}, {})", a, b);
          case Op::And: return fmt("{} && {}", a, b);
          case Op::Or: return fmt("{} || {}", a, b);
          default: NPP_PANIC("bad combiner");
        }
    }

    void
    emitReduceCombine(const Pattern &p, int lv, const std::string &acc,
                      bool isRoot)
    {
        const LevelMapping &l = spec.mapping.levels[lv];
        const char *d = cudaDim(l.dim);

        if (l.blockSize > 1) {
            // Shared-memory tree combine across this level's lanes
            // (warp-synchronous tail omitted for brevity, as in Fig 9).
            line(fmt("red_smem_{}[__lane()] = {};", lv, acc));
            line("__syncthreads();");
            open(fmt("for (int __s = blockDim.{} / 2; __s > 0; __s >>= 1)",
                     d));
            open(fmt("if (threadIdx.{} < __s)", d));
            line(fmt("red_smem_{}[__lane()] = {};", lv,
                     combineText(p.combiner, fmt("red_smem_{}[__lane()]",
                                                 lv),
                                 fmt("red_smem_{}[__lane_plus(__s)]", lv))));
            close();
            line("__syncthreads();");
            close();
            line(fmt("{} = red_smem_{}[__lane_base()];", acc, lv));
        }

        if (l.span.kind == SpanKind::Split) {
            open(fmt("if (threadIdx.{} == 0)", d));
            line(fmt("__partials[__partial_slot(blockIdx.{})] = {};", d,
                     acc));
            close();
        } else if (isRoot) {
            open(fmt("if (threadIdx.{} == 0 && blockIdx.{} == 0)", d, d));
            line(fmt("{}[0] = {};", varName(prog.rootOutput()), acc));
            close();
        }
        // Nested reduce: acc is now live for the enclosing body.
    }

    void
    emitPrefetchFill(int lv)
    {
        if (spec.prefetchedSites.empty() || lv != prefetchFillLevel())
            return;
        line("// prefetch outer-level chunks into shared memory using "
             "dimension-x lanes");
        std::unordered_set<int> arrays;
        for (const Expr *e : sortedPrefetchSites()) {
            if (!arrays.insert(e->varId).second)
                continue;
            line(fmt("smem_{}[threadIdx.x] = {}[__chunk_base + "
                     "threadIdx.x];",
                     varName(e->varId), varName(e->varId)));
        }
        line("__syncthreads();");
    }

    int
    prefetchFillLevel() const
    {
        return 0;
    }

    void
    emitStmts(const std::vector<StmtPtr> &stmts, int lv)
    {
        for (const auto &s : stmts)
            emitStmt(*s, lv);
    }

    void
    emitStmt(const Stmt &s, int lv)
    {
        switch (s.kind) {
          case StmtKind::Let: {
            const VarInfo &v = prog.var(s.var);
            line(fmt("{}{} {} = {};", v.isMutable ? "" : "const ",
                     cudaTypeName(v.kind), v.name, expr(s.value)));
            break;
          }
          case StmtKind::Assign:
            line(fmt("{} = {};", varName(s.var), expr(s.value)));
            break;
          case StmtKind::Store: {
            const LocalArrayPlan *plan = spec.localPlan(s.array);
            if (plan) {
                line(fmt("{}[{}] = {};", varName(s.array),
                         localIndex(*plan, s.index), expr(s.value)));
            } else {
                line(fmt("{}[{}] = {};", varName(s.array),
                         fmt("(long long)({})", expr(s.index)),
                         expr(s.value)));
            }
            break;
          }
          case StmtKind::If:
            open(fmt("if ({})", expr(s.cond)));
            emitStmts(s.body, lv);
            if (!s.elseBody.empty()) {
                indent--;
                line("} else {");
                indent++;
                emitStmts(s.elseBody, lv);
            }
            close();
            break;
          case StmtKind::SeqLoop:
            open(fmt("for (long long {} = 0; {} < {}; {}++)",
                     varName(s.var), varName(s.var), expr(s.trip),
                     varName(s.var)));
            if (s.cond)
                line(fmt("if ({}) break;", expr(s.cond)));
            emitStmts(s.body, lv);
            close();
            break;
          case StmtKind::Nested:
            emitNested(s, lv + 1);
            break;
        }
    }

    void
    emitNested(const Stmt &s, int lv)
    {
        const Pattern &p = *s.pattern;
        if (s.var >= 0 && prog.var(s.var).role == VarRole::ArrayLocal) {
            const LocalArrayPlan *plan = spec.localPlan(s.var);
            NPP_ASSERT(plan != nullptr, "array local without plan");
            if (plan->mode == LocalArrayPlan::Mode::ThreadMalloc) {
                line(fmt("double *{} = (double *)malloc(({}) * "
                         "sizeof(double)); // per-thread allocation",
                         varName(s.var), expr(p.size)));
            } else if (plan->layout == LocalArrayPlan::Layout::Contiguous) {
                line(fmt("const long long __row_{} = __outer_linear_id() * "
                         "({}); // Fig 11(a)",
                         varName(s.var), expr(p.size)));
            } else {
                line(fmt("const long long __col_{} = __outer_linear_id(); "
                         "// Fig 11(b)",
                         varName(s.var)));
                line(fmt("const long long __stride_{} = "
                         "__outer_domain_size();",
                         varName(s.var)));
            }
        }

        if (p.kind == PatternKind::Map || p.kind == PatternKind::ZipWith) {
            bool needsClose = false, hasGuard = false;
            openLevel(p, lv, needsClose, hasGuard);
            emitStmts(p.body, lv);
            const LocalArrayPlan *plan = spec.localPlan(s.var);
            if (plan) {
                line(fmt("{}[{}] = {};", varName(s.var),
                         localIndex(*plan, varRef(p.indexVar,
                                                  ScalarKind::I64)),
                         expr(p.yield)));
            }
            if (needsClose)
                close();
            if (spec.mapping.levels[lv].span.kind == SpanKind::N)
                close();
            if (spec.mapping.levels[lv].blockSize > 1)
                line("__syncthreads(); // inner map results visible "
                     "block-wide");
        } else if (p.kind == PatternKind::Reduce) {
            emitPattern(p, lv, /*isRoot=*/false);
            if (s.var >= 0)
                line(fmt("const double {} = __acc_{};", varName(s.var),
                         lv));
        } else if (p.kind == PatternKind::Foreach) {
            bool needsClose = false, hasGuard = false;
            openLevel(p, lv, needsClose, hasGuard);
            emitStmts(p.body, lv);
            if (needsClose)
                close();
            if (spec.mapping.levels[lv].span.kind == SpanKind::N)
                close();
        } else if (p.kind == PatternKind::Filter) {
            emitNestedFilter(s, lv);
        } else if (p.kind == PatternKind::GroupBy) {
            emitNestedGroupBy(s, lv);
        } else {
            NPP_PANIC("nested {} not supported by the emitter",
                      patternKindName(p.kind));
        }
    }

    void
    emitNestedFilter(const Stmt &s, int lv)
    {
        // Nested filter always maps span(all) (it needs cross-lane state),
        // so every thread of this level's dim cooperates. The span(all)
        // strided loop is replaced by whole-block passes so that no thread
        // exits early and every thread reaches the per-pass scan and
        // barriers. __block_excl_scan computes each lane's offset among
        // the pass's kept elements (__ballot_sync/__popc within a warp,
        // warp totals combined through shared memory) and returns the
        // pass total through its second argument.
        const Pattern &p = *s.pattern;
        const LevelMapping &l = spec.mapping.levels[lv];
        const char *d = cudaDim(l.dim);
        const std::string arr = varName(s.var);
        const LocalArrayPlan *plan = spec.localPlan(s.var);
        NPP_ASSERT(plan != nullptr, "filter result without plan");
        const std::string ty = cudaTypeName(prog.var(s.var).kind);
        const std::string idx = varName(p.indexVar);

        line(fmt("// nested filter into {}: count/scan/scatter per pass",
                 arr));
        line(fmt("__shared__ long long __cursor_{};", arr));
        open(fmt("if (threadIdx.{} == 0)", d));
        line(fmt("__cursor_{} = 0;", arr));
        close();
        line("__syncthreads();");
        open(fmt("for (long long __base_{} = 0; __base_{} < {}; "
                 "__base_{} += blockDim.{})",
                 arr, arr, expr(p.size), arr, d));
        line(fmt("const long long {} = __base_{} + threadIdx.{};", idx,
                 arr, d));
        line(fmt("int __keep_{} = 0;", arr));
        line(fmt("{} __val_{} = 0;", ty, arr));
        open(fmt("if ({} < {})", idx, expr(p.size)));
        emitStmts(p.body, lv);
        open(fmt("if ({})", expr(p.filterPred)));
        line(fmt("__keep_{} = 1;", arr));
        line(fmt("__val_{} = {};", arr, expr(p.yield)));
        close();
        close();
        line(fmt("long long __total_{};", arr));
        line(fmt("const long long __off_{} = __block_excl_scan(__keep_{}, "
                 "&__total_{});",
                 arr, arr, arr));
        open(fmt("if (__keep_{})", arr));
        line(fmt("{}[{}] = __val_{};", arr,
                 localIndexText(*plan,
                                fmt("__cursor_{} + __off_{}", arr, arr)),
                 arr));
        close();
        line("__syncthreads();");
        open(fmt("if (threadIdx.{} == 0)", d));
        line(fmt("__cursor_{} += __total_{};", arr, arr));
        close();
        line("__syncthreads();");
        close();
        line(fmt("const long long {} = __cursor_{};", varName(s.countVar),
                 arr));
        open(fmt("if (threadIdx.{} == 0)", d));
        line(fmt("__counts_{}[__outer_linear_id()] = __cursor_{}; "
                 "// for {}_compact",
                 arr, arr, prog.name()));
        close();
    }

    void
    emitNestedGroupBy(const Stmt &s, int lv)
    {
        const Pattern &p = *s.pattern;
        const LevelMapping &l = spec.mapping.levels[lv];
        const char *d = cudaDim(l.dim);
        const std::string arr = varName(s.var);
        const LocalArrayPlan *plan = spec.localPlan(s.var);
        NPP_ASSERT(plan != nullptr, "groupBy result without plan");
        NPP_ASSERT(p.keyDomain != nullptr, "nested groupBy without key "
                                           "domain");

        line(fmt("// nested groupBy into {}: seed the key-domain bins "
                 "with the combiner identity, then combine keyed yields "
                 "with atomics",
                 arr));
        open(fmt("for (long long __g_{} = threadIdx.{}; __g_{} < {}; "
                 "__g_{} += blockDim.{})",
                 arr, d, arr, expr(p.keyDomain), arr, d));
        line(fmt("{}[{}] = {};", arr,
                 localIndexText(*plan, fmt("__g_{}", arr)),
                 combinerIdentity(p.combiner)));
        close();
        line("__syncthreads();");

        bool needsClose = false, hasGuard = false;
        openLevel(p, lv, needsClose, hasGuard);
        emitStmts(p.body, lv);
        line(fmt("atomic{}(&{}[{}], {});",
                 p.combiner == Op::Add ? "Add" : "CombineCAS", arr,
                 localIndexText(*plan,
                                fmt("(long long)({})", expr(p.key))),
                 expr(p.yield)));
        if (needsClose)
            close();
        if (l.span.kind == SpanKind::N)
            close();
        line("__syncthreads(); // bins visible block-wide");
    }

    void
    combinerKernel()
    {
        // Global combine of the split partials (Section IV-A: Split(k)
        // requires a subsequent combiner kernel).
        int splitLevel = -1;
        for (int lv = 0; lv < spec.mapping.numLevels(); lv++) {
            if (spec.mapping.levels[lv].span.kind == SpanKind::Split)
                splitLevel = lv;
        }
        const int64_t k = spec.mapping.levels[splitLevel].span.factor;
        open(fmt("__global__ void {}_combine(const double *__partials, "
                 "long long __outer, double *__out)",
                 prog.name()));
        line("long long o = blockIdx.x * blockDim.x + threadIdx.x;");
        open("if (o < __outer)");
        line("double acc = __partials[o];");
        open(fmt("for (long long s = 1; s < {}; s++)", k));
        line(fmt("acc = {};",
                 combineText(rootCombiner(), "acc",
                             "__partials[s * __outer + o]")));
        close();
        line("__out[o] = acc;");
        close();
        close();
        os << "\n";
    }

    void
    compactKernels()
    {
        // Finalize pass for variable-size nested outputs (Section V-A):
        // exclusive scan of the per-chunk kept counts, then scatter each
        // chunk's kept prefix into a dense output. One chunk is one outer
        // invocation's slice of the preallocated upper-bound buffer; the
        // read side honours the slice's layout (contiguous row vs
        // interleaved column).
        for (const auto &plan : spec.locals) {
            if (!plan.variableSize)
                continue;
            const std::string arr = varName(plan.varId);
            const std::string ty =
                cudaTypeName(prog.var(plan.varId).kind);
            const bool interleaved =
                plan.mode == LocalArrayPlan::Mode::Prealloc &&
                plan.layout == LocalArrayPlan::Layout::Interleaved;
            const std::string elem =
                interleaved ? "c + i * __num_chunks"
                            : "c * __chunk_size + i";
            open(fmt("__global__ void {}_compact_{}(const long long "
                     "*__counts, const {} *__chunks, long long "
                     "__chunk_size, long long __num_chunks, {} *__out, "
                     "long long *__total)",
                     prog.name(), arr, ty, ty));
            line("long long c = blockIdx.x * blockDim.x + threadIdx.x;");
            open("if (c < __num_chunks)");
            line("long long __base = 0; // exclusive scan of kept counts");
            open("for (long long p = 0; p < c; p++)");
            line("__base += __counts[p];");
            close();
            open("for (long long i = 0; i < __counts[c]; i++)");
            line(fmt("__out[__base + i] = __chunks[{}];", elem));
            close();
            open("if (c == __num_chunks - 1)");
            line("*__total = __base + __counts[c];");
            close();
            close();
            close();
            os << "\n";
        }
    }

    Op
    rootCombiner() const
    {
        // The split level belongs to some reduce pattern; find it.
        Op op = Op::Add;
        std::function<void(const Pattern &)> scan =
            [&](const Pattern &p) {
                if (p.kind == PatternKind::Reduce)
                    op = p.combiner;
                for (const auto &s : p.body) {
                    if (s->kind == StmtKind::Nested)
                        scan(*s->pattern);
                }
            };
        scan(prog.root());
        return op;
    }

    void
    launchStub()
    {
        os << "// launch configuration (computed from actual sizes at "
              "runtime):\n";
        if (spec.consolidation.enabled) {
            os << "//   consolidated: grid(ceil(outer/"
               << spec.consolidation.binLanes << ")), block("
               << spec.consolidation.binLanes
               << "); queue build and consumption fused in one kernel\n";
        }
        os << "//   dim3 block(Bx, By, Bz), grid(Gx, Gy, Gz) per the "
              "mapping above;\n";
        os << "//   " << prog.name() << "_kernel<<<grid, block>>>(...);\n";
        if (needsCombiner()) {
            os << "//   " << prog.name()
               << "_combine<<<ceil(outer/256), 256>>>(partials, outer, "
                  "out);\n";
        }
        for (const auto &plan : spec.locals) {
            if (plan.variableSize) {
                os << "//   " << prog.name() << "_compact_"
                   << varName(plan.varId)
                   << "<<<ceil(chunks/256), 256>>>(counts, chunks, "
                      "chunkSize, chunks, out, total);\n";
            }
        }
    }

    const KernelSpec &spec;
    const Program &prog;
    std::ostringstream os;
    int indent = 0;
    std::unordered_set<int> reduceLevels;
    std::vector<int> levelLoops;
    int prefetchDim = 0;
};

} // namespace

std::string
emitCuda(const KernelSpec &spec)
{
    Emitter emitter(spec);
    return emitter.run();
}

} // namespace npp
