/**
 * @file
 * Mandelbrot explorer: renders a small ASCII fractal from the simulated
 * GPU's output and then sweeps mapping candidates on a skewed image to
 * show the score/performance landscape of Fig 17 interactively.
 *
 *     ./build/examples/mandelbrot_explorer
 */

#include <algorithm>
#include <cstdio>

#include "ir/builder.h"
#include "sim/gpu.h"

using namespace npp;

namespace {

struct Mandel
{
    std::shared_ptr<Program> prog;
    Arr img;
    Ex h, w;
};

Mandel
build(int maxIter)
{
    Mandel mb;
    ProgramBuilder b("mandelbrot");
    mb.h = b.paramI64("H");
    mb.w = b.paramI64("W");
    mb.img = b.outF64("img");
    Ex hp = mb.h, wp = mb.w;
    Arr img = mb.img;
    b.foreach(hp, [&](Body &outer, Ex y) {
        outer.foreach(wp, [&](Body &fn, Ex x) {
            Ex cr = fn.let("cr", (Ex(x) * 3.0) / wp - 2.2);
            Ex ci = fn.let("ci", (Ex(y) * 2.4) / hp - 1.2);
            Mut zr = fn.mut("zr", Ex(0.0));
            Mut zi = fn.mut("zi", Ex(0.0));
            Mut steps = fn.mut("steps", Ex(0.0));
            fn.seqLoop(
                Ex(static_cast<long long>(maxIter)),
                [&](Body &body, Ex) {
                    Ex nzr = body.let(
                        "nzr", zr.ex() * zr.ex() - zi.ex() * zi.ex() + cr);
                    Ex nzi = body.let("nzi", zr.ex() * zi.ex() * 2.0 + ci);
                    body.assign(zr, nzr);
                    body.assign(zi, nzi);
                    body.assign(steps, steps.ex() + 1.0);
                },
                zr.ex() * zr.ex() + zi.ex() * zi.ex() > 4.0);
            fn.store(img, y * wp + x, steps.ex());
        });
    });
    mb.prog = std::make_shared<Program>(b.build());
    return mb;
}

} // namespace

int
main()
{
    Gpu gpu;
    const int maxIter = 24;
    Mandel mb = build(maxIter);

    // Render a terminal-sized image on the simulated GPU.
    const int64_t H = 30, W = 72;
    std::vector<double> image(H * W, 0.0);
    Bindings args(*mb.prog);
    args.scalar(mb.h, static_cast<double>(H));
    args.scalar(mb.w, static_cast<double>(W));
    args.array(mb.img, image);
    gpu.compileAndRun(*mb.prog, args);

    const char *shades = " .:-=+*#%@";
    for (int64_t y = 0; y < H; y++) {
        for (int64_t x = 0; x < W; x++) {
            int level = static_cast<int>(image[y * W + x] * 9 / maxIter);
            std::putchar(shades[std::clamp(level, 0, 9)]);
        }
        std::putchar('\n');
    }

    // Skewed instance: compare strategies as in Fig 17's setting.
    const int64_t skewH = 50, skewW = 4096;
    auto timeWith = [&](Strategy s) {
        std::vector<double> img(skewH * skewW, 0.0);
        Bindings a2(*mb.prog);
        a2.scalar(mb.h, static_cast<double>(skewH));
        a2.scalar(mb.w, static_cast<double>(skewW));
        a2.array(mb.img, img);
        CompileOptions copts;
        copts.strategy = s;
        copts.paramValues = {
            {mb.h.ref()->varId, static_cast<double>(skewH)},
            {mb.w.ref()->varId, static_cast<double>(skewW)}};
        return gpu.compileAndRun(*mb.prog, a2, copts).totalMs;
    };

    std::printf("\nSkewed (%lld x %lld) image, model time per strategy:\n",
                static_cast<long long>(skewH),
                static_cast<long long>(skewW));
    const double multi = timeWith(Strategy::MultiDim);
    std::printf("  MultiDim           %8.4f ms\n", multi);
    for (Strategy s : {Strategy::OneD, Strategy::ThreadBlockThread,
                       Strategy::WarpBased}) {
        const double t = timeWith(s);
        std::printf("  %-18s %8.4f ms  (%.2fx)\n", strategyName(s), t,
                    t / multi);
    }
    std::printf("\nOnly 50 rows of outer parallelism: strategies that pin "
                "the outer level\nto blocks or warps starve the device; "
                "the analysis reshapes the mapping.\n");
    return 0;
}
