/**
 * @file
 * Quickstart: write a nested pattern in the EDSL, let the analysis pick
 * a mapping, inspect the generated CUDA, run it on the simulated GPU,
 * and check the result against the sequential reference.
 *
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "ir/builder.h"
#include "ir/printer.h"
#include "sim/gpu.h"
#include "support/rng.h"

using namespace npp;

int
main()
{
    // 1. Write sumRows (Fig 1 of the paper): for every row of a matrix,
    //    reduce the row to its sum.
    ProgramBuilder b("sumRows");
    Arr m = b.inF64("m");
    Ex R = b.paramI64("R");
    Ex C = b.paramI64("C");
    Arr out = b.outF64("out");
    b.map(R, out, [&](Body &fn, Ex i) {
        return fn.reduce(C, Op::Add,
                         [&](Body &, Ex j) { return m(i * C + j); });
    });
    Program prog = b.build();

    std::printf("== The program ==\n%s\n", printProgram(prog).c_str());

    // 2. Compile: the analysis assigns a logical dimension, block size,
    //    and span to each nest level (Section IV of the paper).
    Gpu gpu;
    const int64_t rows = 4096, cols = 4096;
    CompileOptions copts;
    copts.paramValues = {{R.ref()->varId, static_cast<double>(rows)},
                         {C.ref()->varId, static_cast<double>(cols)}};
    CompileResult compiled = compileProgram(prog, gpu.config(), copts);

    std::printf("== Selected mapping ==\n%s   (score %.0f, DOP %.0f)\n\n",
                compiled.spec.mapping.toString().c_str(),
                compiled.spec.score, compiled.spec.dop);

    std::printf("== Generated CUDA ==\n%s\n",
                compiled.spec.cudaSource.c_str());

    // 3. Run on the simulated Tesla K20c.
    Rng rng(1);
    std::vector<double> data(rows * cols);
    for (auto &v : data)
        v = rng.uniform(0, 1);
    std::vector<double> result(rows, 0.0);

    Bindings args(prog);
    args.scalar(R, static_cast<double>(rows));
    args.scalar(C, static_cast<double>(cols));
    args.array(m, data);
    args.array(out, result);
    SimReport report = gpu.run(compiled.spec, args);

    std::printf("== Simulated run ==\n%s\n\n", report.toString().c_str());

    // 4. Validate against the sequential reference interpreter.
    std::vector<double> expect(rows, 0.0);
    Bindings refArgs(prog);
    refArgs.scalar(R, static_cast<double>(rows));
    refArgs.scalar(C, static_cast<double>(cols));
    refArgs.array(m, data);
    refArgs.array(out, expect);
    ReferenceInterp().run(prog, refArgs);

    std::printf("max |gpu - reference| relative error: %.3g\n",
                maxRelDiff(expect, result));

    // 5. Compare against the fixed strategies the paper studies.
    for (Strategy s : {Strategy::OneD, Strategy::ThreadBlockThread,
                       Strategy::WarpBased}) {
        std::vector<double> alt(rows, 0.0);
        Bindings altArgs(prog);
        altArgs.scalar(R, static_cast<double>(rows));
        altArgs.scalar(C, static_cast<double>(cols));
        altArgs.array(m, data);
        altArgs.array(out, alt);
        CompileOptions altOpts = copts;
        altOpts.strategy = s;
        SimReport altReport = gpu.compileAndRun(prog, altArgs, altOpts);
        std::printf("%-22s %8.4f ms  (%.2fx MultiDim)\n",
                    strategyName(s), altReport.totalMs,
                    altReport.totalMs / report.totalMs);
    }
    return 0;
}
