/**
 * @file
 * PageRank (Fig 5 of the paper): the canonical nested pattern — an
 * outer map over nodes with an inner map and an inner reduce over each
 * node's neighbors, whose sizes are only known at run time. Shows the
 * constraints the analysis derives, the mapping it picks, and a
 * strategy comparison on a random power-law-ish graph.
 *
 *     ./build/examples/pagerank
 */

#include <algorithm>
#include <cstdio>

#include "apps/realworld.h"
#include "ir/builder.h"
#include "ir/printer.h"

using namespace npp;

int
main()
{
    // The IR of Fig 5, with the constraints the analysis generates.
    ProgramBuilder b("pagerank_step");
    Arr start = b.inI64("rowStart");
    Arr nbrs = b.inI64("nbrs");
    Arr degree = b.inF64("degree");
    Arr prev = b.inF64("prev");
    Ex n = b.paramI64("numNodes");
    Ex damp = b.paramF64("damp");
    Arr out = b.outF64("rank");
    b.map(n, out, [&](Body &fn, Ex v) {
        Ex begin = fn.let("begin", start(v));
        Ex cnt = fn.let("cnt", start(v + 1) - begin);
        Arr weights = fn.map(cnt, [&](Body &, Ex e) {
            return prev(nbrs(begin + e)) / degree(nbrs(begin + e));
        });
        Ex sum = fn.reduce(cnt, Op::Add,
                           [&](Body &, Ex e) { return weights(e); });
        return (1.0 - damp) / n + damp * sum;
    });
    Program prog = b.build();

    std::printf("== Fig 5 as IR ==\n%s\n", printProgram(prog).c_str());

    AnalysisEnv env;
    env.prog = &prog;
    const DeviceConfig dev = teslaK20c();
    ConstraintSet cs = buildConstraints(prog, env, dev);
    std::printf("== Constraints (Table II machinery) ==\n");
    for (const auto &c : cs.all)
        std::printf("  %s\n", c.toString().c_str());

    MappingSearch search(dev);
    SearchResult res = search.search(cs);
    std::printf("\nSelected mapping: %s (considered %d candidates)\n",
                res.best.toString().c_str(), res.candidatesConsidered);
    std::printf("Note the hard constraints: the inner level has a\n"
                "dynamically-sized reduce, so it must use span(all) and\n"
                "cannot be split (no combiner can be planned).\n\n");

    // End-to-end runs via the application harness.
    Gpu gpu;
    auto app = makePageRank(32768, 16, 5);
    AppResult multi = app->run(gpu, Strategy::MultiDim, /*validate=*/true);
    AppResult oneD = app->run(gpu, Strategy::OneD);
    AppResult warp = app->run(gpu, Strategy::WarpBased);

    std::printf("== 5 PageRank iterations on a 32K-node graph ==\n");
    std::printf("MultiDim    %8.3f ms   (validation error %.2g)\n",
                multi.gpuMs, multi.maxError);
    std::printf("1D          %8.3f ms   (%.2fx)\n", oneD.gpuMs,
                oneD.gpuMs / multi.gpuMs);
    std::printf("Warp-based  %8.3f ms   (%.2fx)\n", warp.gpuMs,
                warp.gpuMs / multi.gpuMs);
    std::printf("CPU model   %8.3f ms\n", multi.cpuMs);
    return 0;
}
