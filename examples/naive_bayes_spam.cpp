/**
 * @file
 * Naive Bayes spam classifier (Section VI-E): trains on a synthetic
 * document-by-word count matrix using two pattern kernels with opposite
 * access patterns, then classifies held-out documents on the host with
 * the learned statistics. Shows how the analysis picks a different
 * dimension assignment for each kernel over the same data.
 *
 *     ./build/examples/naive_bayes_spam
 */

#include <cmath>
#include <cstdio>

#include "ir/builder.h"
#include "sim/gpu.h"
#include "support/rng.h"

using namespace npp;

int
main()
{
    const int64_t docs = 1024, words = 512;

    // Synthetic corpus: spam documents prefer the first half of the
    // vocabulary, ham the second half.
    Rng rng(2026);
    std::vector<double> counts(docs * words, 0.0);
    std::vector<double> isSpam(docs, 0.0);
    for (int64_t d = 0; d < docs; d++) {
        const bool spam = rng.below(2) == 0;
        isSpam[d] = spam ? 1.0 : 0.0;
        for (int w = 0; w < 40; w++) {
            const int64_t biased =
                spam ? rng.below(words / 2)
                     : words / 2 + rng.below(words / 2);
            const int64_t word =
                rng.below(5) == 0 ? rng.below(words) : biased;
            counts[d * words + word] += 1.0;
        }
    }

    Gpu gpu;

    // Kernel 1: words per document (stride-1 in the INNER index).
    ProgramBuilder b1("doc_totals");
    Arr c1 = b1.inF64("counts");
    Ex d1 = b1.paramI64("D"), w1 = b1.paramI64("W");
    Arr totals = b1.outF64("totals");
    b1.map(d1, totals, [&](Body &fn, Ex doc) {
        return fn.reduce(w1, Op::Add,
                         [&](Body &, Ex w) { return c1(doc * w1 + w); });
    });
    Program progTotals = b1.build();

    // Kernel 2: per-word spam counts (stride-1 in the OUTER index).
    ProgramBuilder b2("word_spam");
    Arr c2 = b2.inF64("counts");
    Arr spam2 = b2.inF64("isSpam");
    Ex d2 = b2.paramI64("D"), w2 = b2.paramI64("W");
    Arr spamCounts = b2.outF64("spamCounts");
    b2.map(w2, spamCounts, [&](Body &fn, Ex word) {
        return fn.reduce(d2, Op::Add, [&](Body &, Ex doc) {
            return c2(Ex(doc) * w2 + word) * spam2(doc);
        });
    });
    Program progSpam = b2.build();

    auto show = [&](const Program &p, int64_t a, int64_t b) {
        CompileOptions copts;
        copts.paramValues = {{/*D*/ 1, static_cast<double>(a)},
                             {/*W*/ 2, static_cast<double>(b)}};
        CompileResult res = compileProgram(p, gpu.config(), copts);
        std::printf("  %-12s -> %s\n", p.name().c_str(),
                    res.spec.mapping.toString().c_str());
        return res;
    };
    std::printf("== Per-kernel mapping decisions over the SAME matrix ==\n");
    show(progTotals, docs, words);
    show(progSpam, docs, words);
    std::printf("A fixed strategy coalesces only one of the two "
                "(Section VI-E).\n\n");

    // Train on the simulated GPU.
    std::vector<double> totalsOut(docs, 0.0), spamOut(words, 0.0);
    {
        Bindings args(progTotals);
        args.scalar(d1, static_cast<double>(docs));
        args.scalar(w1, static_cast<double>(words));
        args.array(c1, counts);
        args.array(totals, totalsOut);
        gpu.compileAndRun(progTotals, args);
    }
    {
        Bindings args(progSpam);
        args.scalar(d2, static_cast<double>(docs));
        args.scalar(w2, static_cast<double>(words));
        args.array(c2, counts);
        args.array(spam2, isSpam);
        args.array(spamCounts, spamOut);
        gpu.compileAndRun(progSpam, args);
    }

    // Host-side model: log P(word|spam) vs log P(word|ham) with add-one
    // smoothing; classify fresh synthetic documents.
    double spamDocs = 0;
    for (double s : isSpam)
        spamDocs += s;
    std::vector<double> wordTotals(words, 0.0);
    for (int64_t d = 0; d < docs; d++)
        for (int64_t w = 0; w < words; w++)
            wordTotals[w] += counts[d * words + w];

    auto classify = [&](const std::vector<double> &doc) {
        double scoreSpam = std::log(spamDocs / docs);
        double scoreHam = std::log(1.0 - spamDocs / docs);
        for (int64_t w = 0; w < words; w++) {
            if (doc[w] == 0)
                continue;
            const double pSpam = (spamOut[w] + 1.0) / (spamDocs + words);
            const double pHam = (wordTotals[w] - spamOut[w] + 1.0) /
                                (docs - spamDocs + words);
            scoreSpam += doc[w] * std::log(pSpam);
            scoreHam += doc[w] * std::log(pHam);
        }
        return scoreSpam > scoreHam;
    };

    int correct = 0;
    const int trials = 200;
    for (int t = 0; t < trials; t++) {
        const bool spam = rng.below(2) == 0;
        std::vector<double> doc(words, 0.0);
        for (int w = 0; w < 40; w++) {
            const int64_t biased =
                spam ? rng.below(words / 2)
                     : words / 2 + rng.below(words / 2);
            doc[rng.below(5) == 0 ? rng.below(words) : biased] += 1.0;
        }
        if (classify(doc) == spam)
            correct++;
    }
    std::printf("== Classification on %d held-out documents ==\n", trials);
    std::printf("accuracy: %.1f%% (chance is 50%%)\n",
                100.0 * correct / trials);
    return 0;
}
