/**
 * @file
 * Consolidation payoff on runtime-sized nested domains: CSR SpMV and
 * BFS frontier expansion over synthetic matrices whose row-length
 * distribution is controlled (uniform, skewed, empty-heavy). For each
 * workload the best static mapping (minimum over the four fixed
 * strategies the search enumerates) is raced against both consolidation
 * granularities (warp-bin and block-bin queues).
 *
 * Columns: best static ms, warp-bin ms, block-bin ms, bin fill and
 * queue-build ms of the better granularity, speedup (static / best
 * consolidated).
 *
 * Two gates make this binary a regression check, not just a figure:
 *   - every row's consolidated outputs (both granularities) must be
 *     bit-identical to the sequential reference interpreter, or the
 *     binary exits 4 — the parent-major queue order is the reference
 *     fold order by construction, so even float reductions must match;
 *   - consolidation must beat the best static mapping on the skewed
 *     SpMV and skewed BFS rows, or the cost model has regressed and the
 *     binary exits 6. Uniform rows are expected to stay static (full
 *     warps have nothing to rebalance, and the queue build is pure
 *     overhead).
 */

#include <algorithm>
#include <string>
#include <vector>

#include "apps/dynsize.h"
#include "common.h"
#include "sim/gpu.h"
#include "sim/metrics.h"
#include "support/rng.h"

namespace npp {
namespace {

struct StaticPoint
{
    const char *name;
    Strategy strategy;
};

const StaticPoint kStatic[] = {
    {"multidim", Strategy::MultiDim},
    {"1d", Strategy::OneD},
    {"tbt", Strategy::ThreadBlockThread},
    {"warp", Strategy::WarpBased},
};

/** Outputs of one consolidated run, checked against the reference. */
struct ConsRun
{
    double totalMs = 0.0;
    double queueBuildMs = 0.0;
    double binFill = 0.0;
};

void
dieParity(const std::string &label, const char *granularity,
          const char *which)
{
    std::fprintf(stderr,
                 "fig_dynsize: %s: %s-bin consolidated %s output is NOT "
                 "bit-identical to the reference interpreter\n",
                 label.c_str(), granularity, which);
    std::exit(4);
}

/** One SpMV workload: race the static strategies against both
 *  consolidation granularities, gate bit parity against the reference,
 *  and return the figure row. */
Row
spmvRow(const Gpu &gpu, int64_t rows, int64_t avgDeg, RowDist dist,
        uint64_t seed, double *staticMs, double *consMs)
{
    const std::string label = std::string("spmv ") + rowDistName(dist) +
                              " " + std::to_string(rows) + "x" +
                              std::to_string(avgDeg);
    CsrMatrix m = makeCsr(rows, avgDeg, dist, seed);
    SpmvProgram s = buildSpmv();
    std::vector<double> x(m.rows);
    Rng rng(seed ^ 0xd15e);
    for (auto &v : x)
        v = rng.uniform(-1, 1);

    std::vector<double> refY(m.rows, 0.0);
    {
        Bindings args = s.bind(m, x, refY);
        ReferenceInterp().run(*s.prog, args);
    }

    double bestStatic = 0.0;
    bool haveStatic = false;
    for (const StaticPoint &sp : kStatic) {
        std::vector<double> y(m.rows, 0.0);
        Bindings args = s.bind(m, x, y);
        CompileOptions copts;
        copts.strategy = sp.strategy;
        ExecOptions eopts;
        eopts.metricsOnly = true;
        const SimReport r = gpu.compileAndRun(*s.prog, args, copts, eopts);
        if (!haveStatic || r.totalMs < bestStatic)
            bestStatic = r.totalMs;
        haveStatic = true;
    }

    ConsRun cons[2];
    const char *granNames[2] = {"warp", "block"};
    const BinGranularity grans[2] = {BinGranularity::Warp,
                                     BinGranularity::Block};
    for (int g = 0; g < 2; g++) {
        std::vector<double> y(m.rows, 0.0);
        Bindings args = s.bind(m, x, y);
        CompileOptions copts;
        copts.strategy = Strategy::Consolidate;
        copts.binGranularity = grans[g];
        const SimReport r = gpu.compileAndRun(*s.prog, args, copts);
        if (maxAbsDiff(refY, y) > 0.0)
            dieParity(label, granNames[g], "y");
        cons[g] = {r.totalMs, r.queueBuildMs, r.stats.binFill};
    }
    const ConsRun &best =
        cons[0].totalMs <= cons[1].totalMs ? cons[0] : cons[1];

    *staticMs = bestStatic;
    *consMs = best.totalMs;
    return Row{label,
               {bestStatic, cons[0].totalMs, cons[1].totalMs, best.binFill,
                best.queueBuildMs, bestStatic / best.totalMs}};
}

/** One BFS frontier-expansion workload (frontier = every vertex once);
 *  same race and parity gate as spmvRow. */
Row
bfsRow(const Gpu &gpu, int64_t rows, int64_t avgDeg, RowDist dist,
       uint64_t seed, double *staticMs, double *consMs)
{
    const std::string label = std::string("bfs ") + rowDistName(dist) +
                              " " + std::to_string(rows) + "x" +
                              std::to_string(avgDeg);
    CsrMatrix g = makeCsr(rows, avgDeg, dist, seed);
    BfsFrontierProgram b = buildBfsFrontier();
    std::vector<double> frontier(g.rows);
    for (int64_t i = 0; i < g.rows; i++)
        frontier[i] = static_cast<double>(i);

    std::vector<double> refNext(g.rows, 0.0), refDeg(g.rows, 0.0);
    {
        Bindings args = b.bind(g, frontier, refNext, refDeg);
        ReferenceInterp().run(*b.prog, args);
    }

    double bestStatic = 0.0;
    bool haveStatic = false;
    for (const StaticPoint &sp : kStatic) {
        std::vector<double> next(g.rows, 0.0), deg(g.rows, 0.0);
        Bindings args = b.bind(g, frontier, next, deg);
        CompileOptions copts;
        copts.strategy = sp.strategy;
        ExecOptions eopts;
        eopts.metricsOnly = true;
        const SimReport r = gpu.compileAndRun(*b.prog, args, copts, eopts);
        if (!haveStatic || r.totalMs < bestStatic)
            bestStatic = r.totalMs;
        haveStatic = true;
    }

    ConsRun cons[2];
    const char *granNames[2] = {"warp", "block"};
    const BinGranularity grans[2] = {BinGranularity::Warp,
                                     BinGranularity::Block};
    for (int gi = 0; gi < 2; gi++) {
        std::vector<double> next(g.rows, 0.0), deg(g.rows, 0.0);
        Bindings args = b.bind(g, frontier, next, deg);
        CompileOptions copts;
        copts.strategy = Strategy::Consolidate;
        copts.binGranularity = grans[gi];
        const SimReport r = gpu.compileAndRun(*b.prog, args, copts);
        if (maxAbsDiff(refNext, next) > 0.0)
            dieParity(label, granNames[gi], "next");
        if (maxAbsDiff(refDeg, deg) > 0.0)
            dieParity(label, granNames[gi], "deg");
        cons[gi] = {r.totalMs, r.queueBuildMs, r.stats.binFill};
    }
    const ConsRun &best =
        cons[0].totalMs <= cons[1].totalMs ? cons[0] : cons[1];

    *staticMs = bestStatic;
    *consMs = best.totalMs;
    return Row{label,
               {bestStatic, cons[0].totalMs, cons[1].totalMs, best.binFill,
                best.queueBuildMs, bestStatic / best.totalMs}};
}

void
runFigure()
{
    Gpu gpu;
    const std::vector<std::string> series = {
        "Static (ms)", "WarpBin (ms)", "BlockBin (ms)",
        "Bin fill",    "QBuild (ms)",  "Speedup"};

    banner("Consolidation payoff on runtime-sized nested domains "
           "(simulated K20c)",
           "Best static mapping vs warp-/block-bin consolidated queues; "
           "every\nconsolidated output is gated bit-identical to the "
           "reference interpreter.");

    double sMs = 0.0, cMs = 0.0;
    std::vector<Row> rows;
    double skewSpmvStatic = 0.0, skewSpmvCons = 0.0;
    double skewBfsStatic = 0.0, skewBfsCons = 0.0;

    rows.push_back(
        spmvRow(gpu, 32768, 8, RowDist::Uniform, 0xa11ce, &sMs, &cMs));
    rows.push_back(
        spmvRow(gpu, 32768, 8, RowDist::Skewed, 0xb0b, &sMs, &cMs));
    rows.push_back(
        spmvRow(gpu, 65536, 8, RowDist::Skewed, 0xcafe, &sMs, &cMs));
    skewSpmvStatic = sMs;
    skewSpmvCons = cMs;
    // Small domain: 32-lane consolidated blocks launch too few warps to
    // hide latency, so static keeps the ticket — the sweep's cost model
    // must keep catching this.
    rows.push_back(
        spmvRow(gpu, 2048, 8, RowDist::Skewed, 0xb0b, &sMs, &cMs));
    rows.push_back(
        spmvRow(gpu, 32768, 8, RowDist::EmptyHeavy, 0xdead, &sMs, &cMs));
    rows.push_back(
        bfsRow(gpu, 65536, 8, RowDist::Skewed, 0xf00d, &sMs, &cMs));
    skewBfsStatic = sMs;
    skewBfsCons = cMs;
    rows.push_back(
        bfsRow(gpu, 32768, 8, RowDist::Uniform, 0xfeed, &sMs, &cMs));

    std::printf("\n");
    table(series, rows, 26);

    std::printf(
        "\nShapes to check:\n"
        "  - skewed rows: a few heavy rows leave most static warps\n"
        "    half-empty; the consolidated queue packs the short rows\n"
        "    into full waves and wins despite paying the queue build —\n"
        "    bin fill near 1.0 is the mechanism (wave occupancy no\n"
        "    longer tracks the longest row in the bin);\n"
        "  - the margin grows with imbalance: empty-heavy and skewed\n"
        "    BFS rows gain the most, uniform rows the least (block-bin\n"
        "    still smooths their residual degree jitter);\n"
        "  - the small skewed domain stays static (speedup < 1): 32-lane\n"
        "    consolidated blocks launch too few warps to hide memory\n"
        "    latency, which is exactly what the sweep's cost model\n"
        "    charges.\n");

    // Gate 2: the figure's reason to exist — consolidation must beat
    // the best static mapping on the skewed SpMV and BFS rows.
    if (skewSpmvCons >= skewSpmvStatic) {
        std::fprintf(stderr,
                     "fig_dynsize: consolidation no longer beats the best "
                     "static mapping on skewed SpMV (%.4f ms vs %.4f ms)\n",
                     skewSpmvCons, skewSpmvStatic);
        std::exit(6);
    }
    if (skewBfsCons >= skewBfsStatic) {
        std::fprintf(stderr,
                     "fig_dynsize: consolidation no longer beats the best "
                     "static mapping on skewed BFS (%.4f ms vs %.4f ms)\n",
                     skewBfsCons, skewBfsStatic);
        std::exit(6);
    }
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
