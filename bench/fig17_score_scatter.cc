/**
 * @file
 * Figure 17: performance vs mapping score over the candidate space, on
 * Mandelbrot with a skewed (50, 20K) output. Every hard-feasible
 * candidate gets a soft-constraint score; a sample of candidates is
 * executed on the simulator. The paper's regions: (A) high score and
 * best performance — where the framework's selection lands; (B) the
 * warp-based fixed mapping — low score, poor performance; (C) false
 * negatives — low score but good performance.
 */

#include <algorithm>

#include "common.h"
#include "ir/builder.h"
#include "sim/gpu.h"

namespace npp {
namespace {

struct MandelProgram
{
    std::shared_ptr<Program> prog;
    Arr out;
    Ex h, w;
};

MandelProgram
buildMandel()
{
    MandelProgram mp;
    ProgramBuilder b("mandelbrot");
    mp.h = b.paramI64("H");
    mp.w = b.paramI64("W");
    mp.out = b.outF64("img");
    Ex hp = mp.h, wp = mp.w;
    Arr img = mp.out;
    b.foreach(hp, [&](Body &outer, Ex y) {
        outer.foreach(wp, [&](Body &fn, Ex x) {
            Ex cr = fn.let("cr", (Ex(x) * 3.5) / wp - 2.5);
            Ex ci = fn.let("ci", (Ex(y) * 2.0) / hp - 1.0);
            Mut zr = fn.mut("zr", Ex(0.0));
            Mut zi = fn.mut("zi", Ex(0.0));
            Mut steps = fn.mut("steps", Ex(0.0));
            fn.seqLoop(
                Ex(12),
                [&](Body &body, Ex) {
                    Ex nzr = body.let(
                        "nzr", zr.ex() * zr.ex() - zi.ex() * zi.ex() + cr);
                    Ex nzi = body.let("nzi", zr.ex() * zi.ex() * 2.0 + ci);
                    body.assign(zr, nzr);
                    body.assign(zi, nzi);
                    body.assign(steps, steps.ex() + 1.0);
                },
                zr.ex() * zr.ex() + zi.ex() * zi.ex() > 4.0);
            fn.store(img, y * wp + x, steps.ex());
        });
    });
    mp.prog = std::make_shared<Program>(b.build());
    return mp;
}

void
runFigure()
{
    // The paper's skewed instance is (50, 20K); same skew, trimmed width
    // so the full candidate sweep stays fast.
    const int64_t H = 50, W = 2048;
    Gpu gpu;
    MandelProgram mp = buildMandel();

    banner("Figure 17: performance vs mapping score (Mandelbrot, skewed "
           "output)",
           "Each sampled hard-feasible candidate: score vs simulated "
           "time.");

    CompileOptions copts;
    copts.keepCandidates = true;
    copts.paramValues = {{mp.h.ref()->varId, static_cast<double>(H)},
                         {mp.w.ref()->varId, static_cast<double>(W)}};
    CompileResult compiled = compileProgram(*mp.prog, gpu.config(), copts);

    // Deterministic sample of the candidate space.
    std::vector<ScoredMapping> cands = compiled.candidates;
    std::sort(cands.begin(), cands.end(),
              [](const ScoredMapping &a, const ScoredMapping &b) {
                  return a.score < b.score;
              });
    const size_t stride = std::max<size_t>(1, cands.size() / 64);

    auto timeMapping = [&](const MappingDecision &d) {
        std::vector<double> img(H * W, 0.0);
        Bindings args(*mp.prog);
        args.scalar(mp.h, static_cast<double>(H));
        args.scalar(mp.w, static_cast<double>(W));
        args.array(mp.out, img);
        CompileOptions fixed = copts;
        fixed.keepCandidates = false;
        fixed.strategy = Strategy::Fixed;
        fixed.fixedMapping = d;
        return gpu.compileAndRun(*mp.prog, args, fixed).totalMs;
    };

    const double bestScore = compiled.spec.score;
    double bestTime = 1e300;
    std::vector<std::pair<double, double>> points; // (score, time)
    for (size_t i = 0; i < cands.size(); i += stride) {
        const double t = timeMapping(cands[i].decision);
        points.emplace_back(cands[i].score, t);
        bestTime = std::min(bestTime, t);
    }
    const double selectedTime = timeMapping(compiled.spec.mapping);
    bestTime = std::min(bestTime, selectedTime);

    // Warp-based fixed point (region B).
    MappingDecision warp = warpBasedMapping(2, gpu.config());
    AnalysisEnv env;
    env.prog = mp.prog.get();
    env.paramValues = copts.paramValues;
    ConstraintSet cs = buildConstraints(*mp.prog, env, gpu.config());
    MappingSearch scorer(gpu.config());
    const double warpScore = scorer.score(warp, cs);
    const double warpTime = timeMapping(warp);

    std::printf("\n# score_rel time_rel   (1.0 = best in sweep)\n");
    int regionA = 0, falseNegatives = 0;
    for (auto &[score, t] : points) {
        const double scoreRel = bestScore > 0 ? score / bestScore : 0;
        const double timeRel = t / bestTime;
        std::printf("  %8.4f %8.3f\n", scoreRel, timeRel);
        if (scoreRel > 0.9 && timeRel < 1.5)
            regionA++;
        if (scoreRel < 0.5 && timeRel < 1.5)
            falseNegatives++;
    }

    std::printf("\nSelected mapping: %s\n",
                compiled.spec.mapping.toString().c_str());
    std::printf("  score %.0f (best %.0f), time %.4f ms (best sampled "
                "%.4f ms)\n",
                compiled.spec.score, bestScore, selectedTime, bestTime);
    std::printf("Warp-based point (region B): score_rel %.3f, time_rel "
                "%.3f\n",
                bestScore > 0 ? warpScore / bestScore : 0,
                warpTime / bestTime);
    std::printf("Region A (high score, near-best time): %d sampled "
                "points\n",
                regionA);
    std::printf("Region C (false negatives: low score, good time): %d "
                "sampled points\n",
                falseNegatives);
    std::printf("\nPaper shapes to check: the selected mapping sits in "
                "region A (within the\nbest-performance band); "
                "warp-based scores and performs worse; some false\n"
                "negatives exist (the scoring is deliberately simple, "
                "Section VI-G).\n");
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
