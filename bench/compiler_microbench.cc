/**
 * @file
 * google-benchmark microbenchmarks of the compiler itself: constraint
 * generation, the Algorithm 1 search ("for typical loops it takes less
 * than a few seconds", Section IV-D — here it is microseconds to
 * milliseconds), CUDA emission, and simulator throughput.
 *
 * `--pipeline [out.json]` instead times the Fig 12/13/14 sweeps
 * end-to-end in four configurations (serial/parallel x cold/warm
 * EvalCache) and writes BENCH_pipeline.json; see runPipelineBench below.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdlib.h> // mkdtemp

#include "apps/sums.h"
#include "ir/builder.h"
#include "pipeline.h"
#include "sim/evalcache.h"
#include "sim/gpu.h"

namespace npp {
namespace {

Program
makeNested(int levels)
{
    ProgramBuilder b("nest");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    if (levels == 1) {
        b.map(n, out, [&](Body &, Ex i) { return in(i) * 2.0; });
    } else if (levels == 2) {
        b.map(n, out, [&](Body &fn, Ex i) {
            return fn.reduce(n, Op::Add, [&](Body &, Ex j) {
                return in(i * n + j);
            });
        });
    } else {
        b.map(n, out, [&](Body &f0, Ex i) {
            return f0.reduce(n, Op::Add, [&](Body &f1, Ex j) {
                return f1.reduce(n, Op::Add, [&](Body &, Ex k) {
                    return in((i * n + j) * n + k);
                });
            });
        });
    }
    return b.build();
}

void
BM_ConstraintGeneration(benchmark::State &state)
{
    Program p = makeNested(static_cast<int>(state.range(0)));
    AnalysisEnv env;
    env.prog = &p;
    const DeviceConfig dev = teslaK20c();
    for (auto _ : state) {
        ConstraintSet cs = buildConstraints(p, env, dev);
        benchmark::DoNotOptimize(cs.all.size());
    }
}
BENCHMARK(BM_ConstraintGeneration)->Arg(1)->Arg(2)->Arg(3);

void
BM_MappingSearch(benchmark::State &state)
{
    Program p = makeNested(static_cast<int>(state.range(0)));
    AnalysisEnv env;
    env.prog = &p;
    const DeviceConfig dev = teslaK20c();
    ConstraintSet cs = buildConstraints(p, env, dev);
    MappingSearch search(dev);
    int64_t candidates = 0;
    for (auto _ : state) {
        SearchResult res = search.search(cs);
        candidates = res.candidatesConsidered;
        benchmark::DoNotOptimize(res.bestScore);
    }
    state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_MappingSearch)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void
BM_CudaEmission(benchmark::State &state)
{
    Program p = makeNested(2);
    const DeviceConfig dev = teslaK20c();
    for (auto _ : state) {
        CompileResult res = compileProgram(p, dev);
        benchmark::DoNotOptimize(res.spec.cudaSource.size());
    }
}
BENCHMARK(BM_CudaEmission)->Unit(benchmark::kMicrosecond);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Wall-clock cost of simulating one sumRows launch (elements/sec).
    const int64_t n = state.range(0);
    Gpu gpu;
    SumsProgram sp = buildSum(false, false);
    for (auto _ : state) {
        SimReport rep = runSum(gpu, sp, n, n);
        benchmark::DoNotOptimize(rep.totalMs);
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SimulatorThroughput)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/** @name Pipeline benchmark (--pipeline)
 *
 * Times the three figure sweeps end-to-end, wall-clock, in four
 * configurations:
 *   - serial_cold:    per-app loop, EvalCache disabled — the seed
 *                     pipeline's behavior;
 *   - parallel_cold:  task-pool sweep, empty cache (misses populate it);
 *   - serial_cached:  per-app loop against the warm cache;
 *   - parallel_warm:  task-pool sweep against the warm cache.
 * Every configuration recomputes the same rows (checked bitwise at the
 * end), so the timings compare equal work.
 *
 * A fifth pair of rows measures the disk tier on fig12 alone:
 * disk_cold populates a fresh NPP_EVAL_CACHE_DIR-style directory (empty
 * memory + empty disk), then disk_warm drops the memory tier — what a
 * freshly started process sees — and replays the whole sweep from disk.
 * The warm rows must be bit-identical to the cold ones and every
 * evaluation must come from a disk hit.
 * @{
 */

double
wallMs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool
rowsEqual(const std::vector<Row> &a, const std::vector<Row> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++) {
        if (a[i].label != b[i].label || a[i].values != b[i].values)
            return false;
    }
    return true;
}

struct FigSpec
{
    const char *name;
    std::vector<Row> (*sweep)(const Gpu &, bool parallel);
};

struct ConfigResult
{
    double ms[3] = {0, 0, 0};       // per figure
    double hitRate[3] = {0, 0, 0};  // per figure
    std::vector<Row> rows[3];
};

int
runPipelineBench(const char *outPath)
{
    const FigSpec figs[3] = {{"fig12_rodinia", fig12Sweep},
                             {"fig13_fixed2d", fig13Sweep},
                             {"fig14_realworld", fig14Sweep}};
    struct Config
    {
        const char *name;
        bool parallel;
        bool cache;
        bool clearFirst;
    };
    const Config configs[4] = {{"serial_cold", false, false, true},
                               {"parallel_cold", true, true, true},
                               {"serial_cached", false, true, false},
                               {"parallel_warm", true, true, false}};

    Gpu gpu;
    EvalCache &cache = EvalCache::instance();
    ConfigResult results[4];
    for (int c = 0; c < 4; c++) {
        const Config &cfg = configs[c];
        cache.setCapacityBytes(cfg.cache ? 4096ll * 1024 * 1024 : 0);
        if (cfg.clearFirst)
            cache.clear();
        std::printf("== %s (threads=%d)\n", cfg.name,
                    cfg.parallel ? parallelThreadCount() : 1);
        for (int f = 0; f < 3; f++) {
            cache.resetCounters();
            results[c].ms[f] = wallMs([&] {
                results[c].rows[f] = figs[f].sweep(gpu, cfg.parallel);
            });
            results[c].hitRate[f] = cache.stats().hitRate();
            std::printf("   %-16s %9.1f ms  (cache hit rate %.2f)\n",
                        figs[f].name, results[c].ms[f],
                        results[c].hitRate[f]);
        }
    }

    bool identical = true;
    for (int c = 1; c < 4; c++)
        for (int f = 0; f < 3; f++)
            identical =
                identical && rowsEqual(results[0].rows[f], results[c].rows[f]);
    std::printf("rows identical across configs: %s\n",
                identical ? "yes" : "NO");

    // Disk tier, fig12 only: cold pass fills an empty cache directory,
    // then the memory tier is dropped (a fresh process) and the warm
    // pass replays the sweep from disk alone.
    double diskColdMs = 0, diskWarmMs = 0;
    uint64_t diskStores = 0, diskHits = 0, diskRejects = 0;
    std::vector<Row> diskColdRows, diskWarmRows;
    {
        char dirTemplate[] = "/tmp/npp_bench_evc_XXXXXX";
        const char *dir = mkdtemp(dirTemplate);
        if (!dir) {
            std::fprintf(stderr, "mkdtemp failed\n");
            return 1;
        }
        cache.setCapacityBytes(4096ll * 1024 * 1024);
        cache.setDiskDir(dir);

        cache.clear();
        cache.resetCounters();
        std::printf("== disk_cold (threads=1, dir=%s)\n", dir);
        diskColdMs = wallMs([&] { diskColdRows = fig12Sweep(gpu, false); });
        diskStores = cache.stats().diskStores;
        std::printf("   %-16s %9.1f ms  (disk stores %llu)\n", figs[0].name,
                    diskColdMs, static_cast<unsigned long long>(diskStores));

        cache.clear(); // drop the memory tier; the files survive
        cache.resetCounters();
        std::printf("== disk_warm (threads=1)\n");
        diskWarmMs = wallMs([&] { diskWarmRows = fig12Sweep(gpu, false); });
        diskHits = cache.stats().diskHits;
        diskRejects = cache.stats().diskRejects;
        std::printf("   %-16s %9.1f ms  (disk hits %llu, rejects %llu)\n",
                    figs[0].name, diskWarmMs,
                    static_cast<unsigned long long>(diskHits),
                    static_cast<unsigned long long>(diskRejects));

        cache.setDiskDir("");
        std::string rm = "rm -rf ";
        rm += dir;
        std::system(rm.c_str());
    }
    const bool diskIdentical = rowsEqual(results[0].rows[0], diskColdRows) &&
                               rowsEqual(results[0].rows[0], diskWarmRows);
    std::printf("fig12 rows identical cold vs disk-warm: %s\n",
                diskIdentical ? "yes" : "NO");
    if (diskHits == 0)
        std::printf("WARNING: disk-warm pass took no disk hits\n");

    FILE *out = std::fopen(outPath, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", outPath);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"evaluation pipeline (fig12/13/14 "
                      "sweeps, wall-clock)\",\n");
    std::fprintf(out, "  \"threads\": %d,\n", parallelThreadCount());
    std::fprintf(out, "  \"rows_identical_across_configs\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(out, "  \"fig12_rows_identical_cold_vs_disk_warm\": %s,\n",
                 diskIdentical ? "true" : "false");
    std::fprintf(out, "  \"figures\": {\n");
    for (int f = 0; f < 3; f++) {
        std::fprintf(out, "    \"%s\": {\n", figs[f].name);
        for (int c = 0; c < 4; c++) {
            std::fprintf(out,
                         "      \"%s\": {\"wall_ms\": %.1f, "
                         "\"cache_hit_rate\": %.4f},\n",
                         configs[c].name, results[c].ms[f],
                         results[c].hitRate[f]);
        }
        if (f == 0) {
            std::fprintf(out,
                         "      \"disk_cold\": {\"wall_ms\": %.1f, "
                         "\"disk_stores\": %llu},\n",
                         diskColdMs,
                         static_cast<unsigned long long>(diskStores));
            std::fprintf(out,
                         "      \"disk_warm\": {\"wall_ms\": %.1f, "
                         "\"disk_hits\": %llu, \"disk_rejects\": %llu},\n",
                         diskWarmMs,
                         static_cast<unsigned long long>(diskHits),
                         static_cast<unsigned long long>(diskRejects));
            std::fprintf(out,
                         "      \"speedup_disk_warm_vs_disk_cold\": "
                         "%.2f,\n",
                         diskColdMs / diskWarmMs);
        }
        std::fprintf(out,
                     "      \"speedup_parallel_warm_vs_serial_cold\": "
                     "%.2f\n    }%s\n",
                     results[0].ms[f] / results[3].ms[f],
                     f + 1 < 3 ? "," : "");
    }
    std::fprintf(out, "  },\n");
    double serialTotal = 0, warmTotal = 0;
    for (int f = 0; f < 3; f++) {
        serialTotal += results[0].ms[f];
        warmTotal += results[3].ms[f];
    }
    std::fprintf(out,
                 "  \"total\": {\"serial_cold_ms\": %.1f, "
                 "\"parallel_warm_ms\": %.1f, \"speedup\": %.2f}\n",
                 serialTotal, warmTotal, serialTotal / warmTotal);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", outPath);
    return identical && diskIdentical ? 0 : 2;
}

/** @} */

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--pipeline") == 0) {
            const char *out =
                i + 1 < argc ? argv[i + 1] : "BENCH_pipeline.json";
            return npp::runPipelineBench(out);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
