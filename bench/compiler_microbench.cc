/**
 * @file
 * google-benchmark microbenchmarks of the compiler itself: constraint
 * generation, the Algorithm 1 search ("for typical loops it takes less
 * than a few seconds", Section IV-D — here it is microseconds to
 * milliseconds), CUDA emission, and simulator throughput.
 */

#include <benchmark/benchmark.h>

#include "apps/sums.h"
#include "ir/builder.h"
#include "sim/gpu.h"

namespace npp {
namespace {

Program
makeNested(int levels)
{
    ProgramBuilder b("nest");
    Arr in = b.inF64("in");
    Ex n = b.paramI64("n");
    Arr out = b.outF64("out");
    if (levels == 1) {
        b.map(n, out, [&](Body &, Ex i) { return in(i) * 2.0; });
    } else if (levels == 2) {
        b.map(n, out, [&](Body &fn, Ex i) {
            return fn.reduce(n, Op::Add, [&](Body &, Ex j) {
                return in(i * n + j);
            });
        });
    } else {
        b.map(n, out, [&](Body &f0, Ex i) {
            return f0.reduce(n, Op::Add, [&](Body &f1, Ex j) {
                return f1.reduce(n, Op::Add, [&](Body &, Ex k) {
                    return in((i * n + j) * n + k);
                });
            });
        });
    }
    return b.build();
}

void
BM_ConstraintGeneration(benchmark::State &state)
{
    Program p = makeNested(static_cast<int>(state.range(0)));
    AnalysisEnv env;
    env.prog = &p;
    const DeviceConfig dev = teslaK20c();
    for (auto _ : state) {
        ConstraintSet cs = buildConstraints(p, env, dev);
        benchmark::DoNotOptimize(cs.all.size());
    }
}
BENCHMARK(BM_ConstraintGeneration)->Arg(1)->Arg(2)->Arg(3);

void
BM_MappingSearch(benchmark::State &state)
{
    Program p = makeNested(static_cast<int>(state.range(0)));
    AnalysisEnv env;
    env.prog = &p;
    const DeviceConfig dev = teslaK20c();
    ConstraintSet cs = buildConstraints(p, env, dev);
    MappingSearch search(dev);
    int64_t candidates = 0;
    for (auto _ : state) {
        SearchResult res = search.search(cs);
        candidates = res.candidatesConsidered;
        benchmark::DoNotOptimize(res.bestScore);
    }
    state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_MappingSearch)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void
BM_CudaEmission(benchmark::State &state)
{
    Program p = makeNested(2);
    const DeviceConfig dev = teslaK20c();
    for (auto _ : state) {
        CompileResult res = compileProgram(p, dev);
        benchmark::DoNotOptimize(res.spec.cudaSource.size());
    }
}
BENCHMARK(BM_CudaEmission)->Unit(benchmark::kMicrosecond);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Wall-clock cost of simulating one sumRows launch (elements/sec).
    const int64_t n = state.range(0);
    Gpu gpu;
    SumsProgram sp = buildSum(false, false);
    for (auto _ : state) {
        SimReport rep = runSum(gpu, sp, n, n);
        benchmark::DoNotOptimize(rep.totalMs);
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SimulatorThroughput)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace npp

BENCHMARK_MAIN();
