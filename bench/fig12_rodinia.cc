/**
 * @file
 * Figure 12: Rodinia applications — execution time of the
 * analysis-selected mapping (MultiDim) and the 1D mapping, normalized to
 * the hand-optimized implementation (Manual = 1.0, lower is better).
 */

#include "apps/rodinia.h"
#include "common.h"

namespace npp {
namespace {

void
runFigure()
{
    Gpu gpu;
    banner("Figure 12: Rodinia benchmarks vs manual and 1D",
           "Bars: execution time normalized to Manual (= 1.0).");

    std::vector<std::unique_ptr<App>> apps;
    apps.push_back(makeNearestNeighbor());
    apps.push_back(makeGaussian());
    apps.push_back(makeHotspot());
    apps.push_back(makeMandelbrot());
    apps.push_back(makeSrad());
    apps.push_back(makePathfinder());
    apps.push_back(makeLud());
    apps.push_back(makeBfs());

    std::vector<Row> rows;
    for (auto &app : apps) {
        const double manual = app->runManualMs(gpu);
        AppResult multi = app->run(gpu, Strategy::MultiDim,
                                   /*validate=*/true);
        AppResult oneD = app->run(gpu, Strategy::OneD);
        if (multi.maxError > 1e-6) {
            std::fprintf(stderr, "%s: validation error %g\n",
                         app->name().c_str(), multi.maxError);
        }
        rows.push_back({app->name(),
                        {1.0, multi.gpuMs / manual, oneD.gpuMs / manual}});
    }
    table({"Manual", "MultiDim", "1D"}, rows);

    std::printf(
        "\nPaper shapes to check:\n"
        "  - MultiDim within ~1.2x of Manual on NearestNeighbor /\n"
        "    Hotspot / Mandelbrot / Srad;\n"
        "  - MultiDim BEATS Manual on Gaussian (manual nest was\n"
        "    uncoalesced) and BFS (manual is top-level only);\n"
        "  - Manual wins big on Pathfinder and LUD (multi-iteration\n"
        "    shared-memory fusion the compiler does not attempt);\n"
        "  - 1D is far slower on every multi-level application.\n");
}

} // namespace
} // namespace npp

int
main()
{
    npp::runFigure();
    return 0;
}
