/**
 * @file
 * Figure 12: Rodinia applications — execution time of the
 * analysis-selected mapping (MultiDim) and the 1D mapping, normalized to
 * the hand-optimized implementation (Manual = 1.0, lower is better).
 * The per-application sweep runs on the task pool (identical rows to a
 * serial sweep; see bench/pipeline.h).
 */

#include "pipeline.h"

namespace npp {
namespace {

void
runFigure()
{
    Gpu gpu;
    banner("Figure 12: Rodinia benchmarks vs manual and 1D",
           "Bars: execution time normalized to Manual (= 1.0).");

    table({"Manual", "MultiDim", "1D"},
          fig12Sweep(gpu, /*parallel=*/true));

    std::printf(
        "\nPaper shapes to check:\n"
        "  - MultiDim within ~1.2x of Manual on NearestNeighbor /\n"
        "    Hotspot / Mandelbrot / Srad;\n"
        "  - MultiDim BEATS Manual on Gaussian (manual nest was\n"
        "    uncoalesced) and BFS (manual is top-level only);\n"
        "  - Manual wins big on Pathfinder and LUD (multi-iteration\n"
        "    shared-memory fusion the compiler does not attempt);\n"
        "  - 1D is far slower on every multi-level application.\n");
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
