/**
 * @file
 * Ablation: each Section V optimization (plus the fusion extension)
 * toggled in isolation on the workload it targets, normalized to the
 * fully-optimized configuration (1.0, lower is better).
 *
 *  - shared-memory prefetch (V-B) on the Fig 8 imperfect nest;
 *  - preallocation + layout (V-A) on sumWeightedCols (Fig 16's subject);
 *  - vertical map-reduce fusion on the Fig 5 PageRank step.
 */

#include "apps/sums.h"
#include "common.h"
#include "ir/builder.h"
#include "support/rng.h"

namespace npp {
namespace {

/** Fig 8: outer-level read reused across the inner reduce. */
double
fig8Time(const Gpu &gpu, bool prefetch)
{
    static std::shared_ptr<Program> prog;
    static Arr a1, a2, out;
    static Ex n, m;
    if (!prog) {
        ProgramBuilder b("fig8");
        a1 = b.inF64("array1D");
        a2 = b.inF64("array2D");
        n = b.paramI64("I");
        m = b.paramI64("J");
        out = b.outF64("out");
        Arr one = a1, two = a2;
        Ex mm = m;
        b.map(n, out, [&](Body &fn, Ex i) {
            Ex scale = fn.let("scale", one(i));
            return fn.reduce(mm, Op::Add, [&](Body &, Ex j) {
                return two(i * mm + j) * scale;
            });
        });
        prog = std::make_shared<Program>(b.build());
    }
    const int64_t I = 4096, J = 512;
    static std::vector<double> d1, d2;
    if (d1.empty()) {
        Rng rng(21);
        d1.resize(I);
        d2.resize(I * J);
        for (auto &v : d1)
            v = rng.uniform(0, 1);
        for (auto &v : d2)
            v = rng.uniform(0, 1);
    }
    std::vector<double> o(I, 0.0);
    Bindings args(*prog);
    args.scalar(n, static_cast<double>(I));
    args.scalar(m, static_cast<double>(J));
    args.array(a1, d1);
    args.array(a2, d2);
    args.array(out, o);
    CompileOptions copts;
    copts.smemPrefetch = prefetch;
    copts.paramValues = {{n.ref()->varId, static_cast<double>(I)},
                         {m.ref()->varId, static_cast<double>(J)}};
    return gpu.compileAndRun(*prog, args, copts).totalMs;
}

double
preallocTime(const Gpu &gpu, const PreallocOptions &popts)
{
    SumsProgram sp = buildSum(true, true); // sumWeightedCols
    const int64_t R = 2048, C = 2048;
    CompileOptions base;
    base.paramValues = {{sp.r.ref()->varId, static_cast<double>(R)},
                        {sp.c.ref()->varId, static_cast<double>(C)}};
    CompileResult full = compileProgram(*sp.prog, gpu.config(), base);
    CompileOptions copts = base;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping = full.spec.mapping;
    copts.prealloc = popts;
    return runSum(gpu, sp, R, C, copts).totalMs;
}

double
pagerankTime(const Gpu &gpu, bool fuse)
{
    // A single PageRank step at modest size (malloc mode is slow);
    // compiled directly from the Fig 5 program so fusion can be toggled.
    static std::shared_ptr<Program> prog;
    static Arr start, nbrs, deg, prev, out;
    static Ex n, damp;
    if (!prog) {
        ProgramBuilder b("pagerank_step");
        start = b.inI64("rowStart");
        nbrs = b.inI64("nbrs");
        deg = b.inF64("degree");
        prev = b.inF64("prev");
        n = b.paramI64("numNodes");
        damp = b.paramF64("damp");
        out = b.outF64("rank");
        Arr st = start, nb = nbrs, dg = deg, pv = prev;
        Ex np = n, dp = damp;
        b.map(np, out, [&](Body &fn, Ex v) {
            Ex begin = fn.let("begin", st(v));
            Ex cnt = fn.let("cnt", st(v + 1) - begin);
            Arr weights = fn.map(cnt, [&](Body &, Ex e) {
                return pv(nb(begin + e)) / dg(nb(begin + e));
            });
            Ex sum = fn.reduce(cnt, Op::Add,
                               [&](Body &, Ex e) { return weights(e); });
            return (1.0 - dp) / np + dp * sum;
        });
        prog = std::make_shared<Program>(b.build());
    }
    const int64_t N = 8192;
    static std::vector<double> startD, nbrD, degD, prevD;
    if (startD.empty()) {
        Rng rng(31);
        startD.push_back(0);
        for (int64_t v = 0; v < N; v++) {
            const int64_t d = 1 + rng.below(24);
            for (int64_t e = 0; e < d; e++)
                nbrD.push_back(static_cast<double>(rng.below(N)));
            startD.push_back(static_cast<double>(nbrD.size()));
        }
        degD.assign(N, 1.0);
        for (double x : nbrD)
            degD[static_cast<int64_t>(x)] += 1.0;
        prevD.assign(N, 1.0 / N);
    }
    std::vector<double> rank(N, 0.0);
    Bindings args(*prog);
    args.scalar(n, static_cast<double>(N));
    args.scalar(damp, 0.85);
    args.array(start, startD);
    args.array(nbrs, nbrD);
    args.array(deg, degD);
    args.array(prev, prevD);
    args.array(out, rank);
    CompileOptions copts;
    copts.fuseMapReduce = fuse;
    copts.paramValues = {{n.ref()->varId, static_cast<double>(N)}};
    return gpu.compileAndRun(*prog, args, copts).totalMs;
}

void
runAblation()
{
    Gpu gpu;
    banner("Ablation: each optimization toggled on its target workload",
           "Time normalized to the fully optimized configuration "
           "(= 1.0).");

    std::vector<Row> rows;
    {
        const double with = fig8Time(gpu, true);
        rows.push_back({"Fig8 smem prefetch",
                        {1.0, fig8Time(gpu, false) / with}});
    }
    {
        PreallocOptions fullOpt;
        PreallocOptions noLayout;
        noLayout.layoutFromMapping = false;
        PreallocOptions mallocMode;
        mallocMode.enable = false;
        const double with = preallocTime(gpu, fullOpt);
        rows.push_back({"prealloc layout (V-A)",
                        {1.0, preallocTime(gpu, noLayout) / with}});
        rows.push_back({"prealloc at all (V-A)",
                        {1.0, preallocTime(gpu, mallocMode) / with}});
    }
    {
        const double with = pagerankTime(gpu, true);
        rows.push_back({"map-reduce fusion (Fig 5)",
                        {1.0, pagerankTime(gpu, false) / with}});
    }
    table({"enabled", "disabled"}, rows, 28);
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runAblation();
    return npp::benchFinish();
}
