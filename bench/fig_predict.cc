/**
 * @file
 * Predictive search pruning payoff: for the fig12/fig13 program set the
 * learned cost model ranks the score-ordered candidate pick list and
 * only the top-k survivors are exactly simulated, so a cold sweep (no
 * eval-cache entries anywhere) does a fraction of the simulation work.
 * The figure harvests its own training set first — phase A runs the
 * full cold sweeps with the sample observer attached, phase B trains a
 * ridge model on that harvest, phase C reruns every sweep cold with the
 * model — so the binary is self-contained and deterministic.
 *
 * Columns: full cold-sweep wall ms, pruned cold-sweep wall ms,
 * candidates simulated by each, wall speedup (full / pruned).
 *
 * Three gates make this binary a regression check, not just a figure:
 *   - every pruned sweep must select the same mapping as the full
 *     sweep, or the binary exits 4 — pruning is a search-time
 *     optimization, never a search-result change;
 *   - the selected mapping's simulated time must be bit-identical
 *     between the two sweeps (the exact simulator stays the oracle; the
 *     model only reorders what gets simulated), or the binary exits 5;
 *   - the aggregate cold-sweep wall time must drop by at least 1.5x, or
 *     the pruning machinery has stopped paying for itself and the
 *     binary exits 6.
 */

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "predict/predict.h"
#include "server/programs.h"
#include "sim/gpu.h"

namespace npp {
namespace {

/** The fig12/fig13 program set at sweep-friendly sizes: large enough
 *  that simulation dominates compile time (so pruning shows up in wall
 *  clock), small enough that 48-candidate full sweeps stay tractable. */
const struct
{
    const char *name;
    std::map<std::string, int64_t> sizes;
} kPrograms[] = {
    {"sumrows", {{"rows", 512}, {"cols", 512}}},
    {"sumcols", {{"rows", 512}, {"cols", 512}}},
    {"weightedrows", {{"rows", 512}, {"cols", 512}}},
    {"weightedcols", {{"rows", 512}, {"cols", 512}}},
    {"pagerank", {{"nodes", 4096}}},
    {"mandelbrot", {{"height", 128}, {"width", 256}}},
    {"spmv", {{"rows", 2048}, {"avgdeg", 8}}},
};

struct SweepPoint
{
    PredictSweep sweep;
    double wallMs = 0.0;
};

/** Run one cold sweep: drop every cached evaluation first so the wall
 *  clock measures real simulation work, not cache replay. */
SweepPoint
coldSweep(const Gpu &gpu, const DemoProgram &demo, const PredictModel *model)
{
    EvalCache::instance().clear();
    Bindings args(*demo.prog);
    demo.bind(args);
    CompileOptions copts;
    copts.paramValues = demo.params;
    copts.fuseMapReduce = demo.fuse;

    const auto t0 = std::chrono::steady_clock::now();
    SweepPoint point;
    point.sweep = predictiveSweep(gpu, *demo.prog, args, copts, model,
                                  kPredictDefaultTopK);
    const auto t1 = std::chrono::steady_clock::now();
    point.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return point;
}

void
runFigure()
{
    // The bench owns its cache state: detach any ambient disk tier so a
    // warm NPP_EVAL_CACHE_DIR cannot turn the "cold" sweeps into
    // replays, and harvest into a private sample store.
    EvalCache::instance().setDiskDir("");
    char tmpl[] = "/tmp/nppfigpredict_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
        std::fprintf(stderr, "fig_predict: mkdtemp failed\n");
        std::exit(1);
    }
    const std::string sampleDir = tmpl;

    Gpu gpu;
    std::vector<std::unique_ptr<DemoProgram>> programs;
    for (const auto &p : kPrograms) {
        std::string error;
        programs.push_back(buildDemoProgram(p.name, p.sizes, &error));
        if (!programs.back()) {
            std::fprintf(stderr, "fig_predict: %s: %s\n", p.name,
                         error.c_str());
            std::exit(1);
        }
    }

    banner("Predictive search pruning on the fig12/fig13 program set "
           "(simulated K20c)",
           "Cold sweeps only (eval cache cleared before every sweep). "
           "Phase A\nfull-sweeps each program and harvests training "
           "pairs; phase B trains\nthe ridge model; phase C repeats "
           "every sweep model-pruned. Gates:\nsame selected mapping, "
           "bit-identical best time, >= 1.5x aggregate\nwall speedup.");

    // Phase A: full cold sweeps, observer harvesting every simulation.
    PredictRuntime::instance().setSampleDir(sampleDir);
    std::vector<SweepPoint> full;
    for (const auto &demo : programs)
        full.push_back(coldSweep(gpu, *demo, nullptr));
    PredictRuntime::instance().setSampleDir("");

    // Phase B: train on the harvest.
    SampleLoadStats loadStats;
    const std::vector<PredictSample> samples =
        loadPredictSamples(sampleDir, &loadStats);
    const std::optional<PredictModel> model = trainPredictModel(samples);
    if (!model.has_value()) {
        std::fprintf(stderr,
                     "fig_predict: training produced no model from %zu "
                     "samples (%llu rejected)\n",
                     samples.size(),
                     static_cast<unsigned long long>(loadStats.rejected));
        std::exit(1);
    }
    std::printf("\ntrained: %llu samples, feature schema v%u\n",
                static_cast<unsigned long long>(model->trainedSamples),
                model->featureVersion);

    // Phase C: pruned cold sweeps with the trained model.
    std::vector<SweepPoint> pruned;
    for (const auto &demo : programs)
        pruned.push_back(coldSweep(gpu, *demo, &*model));

    const std::vector<std::string> series = {"Full (ms)", "Pruned (ms)",
                                             "FullSims", "PrunedSims",
                                             "Speedup"};
    std::vector<Row> rows;
    double fullTotal = 0.0, prunedTotal = 0.0;
    for (size_t i = 0; i < programs.size(); i++) {
        const PredictSweep &f = full[i].sweep;
        const PredictSweep &p = pruned[i].sweep;
        const char *name = kPrograms[i].name;

        // Gate 1: pruning must never change the selected mapping.
        if (!(p.best == f.best)) {
            std::fprintf(stderr,
                         "fig_predict: %s: pruned sweep selected %s but "
                         "the full sweep selected %s\n",
                         name, p.best.toString().c_str(),
                         f.best.toString().c_str());
            std::exit(4);
        }
        // Gate 2: the oracle's verdict on that mapping is bit-exact.
        if (p.bestMs != f.bestMs) {
            std::fprintf(stderr,
                         "fig_predict: %s: best time changed under "
                         "pruning (%.17g ms vs %.17g ms)\n",
                         name, p.bestMs, f.bestMs);
            std::exit(5);
        }

        fullTotal += full[i].wallMs;
        prunedTotal += pruned[i].wallMs;
        rows.push_back(Row{name,
                           {full[i].wallMs, pruned[i].wallMs,
                            static_cast<double>(f.survivors),
                            static_cast<double>(p.survivors),
                            full[i].wallMs / pruned[i].wallMs}});
    }
    rows.push_back(Row{"TOTAL",
                       {fullTotal, prunedTotal, 0.0, 0.0,
                        fullTotal / prunedTotal}});

    std::printf("\n");
    table(series, rows, 16);

    std::printf(
        "\nShapes to check:\n"
        "  - PrunedSims is a fraction of FullSims on every row: the\n"
        "    model ranks the 48-candidate pick list and only the top-k\n"
        "    (plus the score choice) reach the exact simulator;\n"
        "  - Full (ms) and Pruned (ms) track the simulation counts —\n"
        "    the per-candidate cost is unchanged, only the count drops;\n"
        "  - the TOTAL speedup clears 1.5x; per-row speedups vary with\n"
        "    how much of each sweep's wall time is compilation (which\n"
        "    pruning cannot remove).\n");

    // Gate 3: the figure's reason to exist.
    const double speedup = fullTotal / prunedTotal;
    if (speedup < 1.5) {
        std::fprintf(stderr,
                     "fig_predict: pruned cold sweeps are only %.2fx "
                     "faster than full (%.1f ms vs %.1f ms); the 1.5x "
                     "floor has regressed\n",
                     speedup, prunedTotal, fullTotal);
        std::exit(6);
    }

    const std::string cmd = "rm -rf '" + sampleDir + "'";
    (void)!std::system(cmd.c_str());
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
