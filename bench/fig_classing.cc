/**
 * @file
 * Block-equivalence classing payoff: wall-clock of full (every-block)
 * vs classed metrics-only simulation, on the shapes classing was built
 * for. Two sections:
 *
 *   1. Variable-size programs (the Fig 16 family): a class-invariant
 *      nested filter (bandCompact) sweeps the outer size — classed
 *      simulation visits two representative blocks per class while the
 *      full run visits all of them, so the speedup grows with the outer
 *      size. A data-dependent variant (sumPositiveRows) rides along to
 *      show the exact fallback costs ~1x.
 *
 *   2. Per-site attribution (--stats): dense sum kernels with
 *      siteStats on — the sweep that used to force exact simulation
 *      and now classes.
 *
 * Columns: full ms, classed ms, speedup (full/classed), identical
 * (1 = reports bit-identical, checked by reportsBitIdentical; a 0 aborts
 * the binary). Both modes run through the uncached Gpu::run path, so
 * every timing is a true re-simulation.
 */

#include <functional>
#include <memory>

#include "apps/sums.h"
#include "common.h"
#include "ir/builder.h"
#include "pipeline.h"
#include "support/rng.h"

namespace npp {
namespace {

/** A program plus its bound inputs and (metrics-only, never written)
 *  outputs, ready to time. */
struct BenchCase
{
    std::string label;
    std::shared_ptr<Program> prog;
    std::function<void(Bindings &)> bind;
};

std::shared_ptr<std::vector<double>>
signedData(int64_t n, uint64_t seed)
{
    auto m = std::make_shared<std::vector<double>>(std::max<int64_t>(n, 1));
    Rng rng(seed);
    for (auto &x : *m)
        x = rng.uniform(-1, 1);
    return m;
}

/** The classable variable-size kernel from the differential suite: the
 *  filter predicate depends only on the inner index and a launch
 *  parameter, so every block walks the compaction cursor identically. */
BenchCase
bandCompactCase(int64_t R, int64_t C)
{
    ProgramBuilder b("bandCompact");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    Arr cnts = b.outF64("counts");
    b.foreach(r, [&](Body &outer, Ex i) {
        Filtered kept = outer.filter(cc, [&](Body &, Ex j) {
            return FilterItem{Ex(j) * 2 < cc, m(i * cc + j) * 2.0};
        });
        outer.store(cnts, i, kept.count);
        outer.foreach(cc, [&](Body &fn, Ex j) {
            fn.branch(Ex(j) < kept.count, [&](Body &t) {
                t.store(out, i * cc + j, kept.items(j));
            });
        });
    });
    BenchCase c;
    c.label = "bandCompact " + std::to_string(R) + "x" + std::to_string(C);
    c.prog = std::make_shared<Program>(b.build());
    auto mData = signedData(R * C, 0x5eedULL);
    auto outData = std::make_shared<std::vector<double>>(R * C, 0.0);
    auto cntData = std::make_shared<std::vector<double>>(R, 0.0);
    c.bind = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, *mData);
        args.array(out, *outData);
        args.array(cnts, *cntData);
    };
    return c;
}

/** Fig 16's data-dependent variable-size kernel: the predicate reads
 *  the matrix, classing falls back, speedup ~1x. */
BenchCase
sumPositivesCase(int64_t R, int64_t C)
{
    SumsProgram sp = buildSumPositives(/*byCols=*/false);
    BenchCase c;
    c.label = sp.prog->name() + " " + std::to_string(R) + "x" +
              std::to_string(C) + " (fallback)";
    c.prog = sp.prog;
    auto mData = signedData(R * C, 0xfeedULL);
    auto outData =
        std::make_shared<std::vector<double>>(sp.outputSize(R, C), 0.0);
    c.bind = [=](Bindings &args) {
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *mData);
        args.array(sp.out, *outData);
    };
    return c;
}

/** Dense sum kernel (Fig 1 / Fig 15) for the per-site attribution
 *  sweep. */
BenchCase
sumCase(bool byCols, bool weighted, int64_t R, int64_t C)
{
    SumsProgram sp = buildSum(byCols, weighted);
    BenchCase c;
    c.label = sp.prog->name() + " " + std::to_string(R) + "x" +
              std::to_string(C);
    c.prog = sp.prog;
    auto mData = signedData(R * C, 0xfeedULL);
    auto vData = signedData(std::max(R, C), 0xbeefULL);
    auto outData =
        std::make_shared<std::vector<double>>(sp.outputSize(R, C), 0.0);
    c.bind = [=](Bindings &args) {
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *mData);
        if (sp.weighted)
            args.array(sp.v, *vData);
        args.array(sp.out, *outData);
    };
    return c;
}

/** Fixed two-level mapping matching the differential suite: outer
 *  partitioned across blocks (block size 16 keeps per-block output
 *  shifts at 128B multiples), inner span-all — many blocks, so
 *  classing has real work to skip. */
CompileOptions
partitionedOuter()
{
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping.levels = {{0, 16, SpanType::one()},
                                 {1, 32, SpanType::all()}};
    return copts;
}

Row
timeCase(const Gpu &gpu, const BenchCase &c, const CompileOptions &copts,
         bool siteStats)
{
    CompileResult compiled = compileProgram(*c.prog, gpu.config(), copts);
    Bindings args(*c.prog);
    c.bind(args);
    ClassedTiming t = timeClassedVsFull(gpu, compiled.spec, args, siteStats);
    if (!t.identical) {
        std::fprintf(stderr,
                     "fig_classing: %s: classed report is NOT bit-identical "
                     "to the full simulation\n",
                     c.label.c_str());
        std::exit(4);
    }
    if (!t.classReason.empty())
        std::printf("  %-34s every block simulated (%s)\n", c.label.c_str(),
                    t.classReason.c_str());
    else
        std::printf("  %-34s %lld blocks replicated from class "
                    "representatives\n",
                    c.label.c_str(),
                    static_cast<long long>(t.classedBlocks));
    return Row{c.label,
               {t.fullMs, t.classedMs, t.fullMs / t.classedMs,
                t.identical ? 1.0 : 0.0}};
}

void
runFigure()
{
    Gpu gpu;
    const std::vector<std::string> series = {"Full (ms)", "Classed (ms)",
                                             "Speedup", "Identical"};

    banner("Classing payoff: variable-size programs (Fig 16 shapes)",
           "Full vs classed metrics-only simulation; identical=1 means "
           "bit-identical reports.");
    std::vector<Row> varRows;
    for (int64_t R : {2048, 8192, 32768})
        varRows.push_back(
            timeCase(gpu, bandCompactCase(R, 64), partitionedOuter(),
                     /*siteStats=*/false));
    varRows.push_back(timeCase(gpu, sumPositivesCase(2048, 64),
                               partitionedOuter(), /*siteStats=*/false));
    std::printf("\n");
    table(series, varRows, 34);

    banner("Classing payoff: per-site attribution (--stats sweep)",
           "siteStats no longer forces exact simulation; reports stay "
           "bit-identical.");
    // Shapes where the simulator's per-block metrics really are uniform
    // class; the other two model slightly different traffic on a few
    // blocks (absolute-address artifacts of the exact simulator,
    // unchanged by attribution) — the runtime probes catch them
    // (adjacent divergence in sumCols at 1024^2, a scattered anomaly in
    // sumWeightedRows at 512^2 that only the spread probe sees) and
    // fall back, still bit-identical.
    std::vector<Row> siteRows;
    siteRows.push_back(timeCase(gpu, sumCase(false, false, 1024, 1024),
                                partitionedOuter(), /*siteStats=*/true));
    siteRows.push_back(timeCase(gpu, sumCase(false, true, 512, 512),
                                partitionedOuter(), /*siteStats=*/true));
    siteRows.push_back(timeCase(gpu, sumCase(true, true, 256, 256),
                                partitionedOuter(), /*siteStats=*/true));
    siteRows.push_back(timeCase(gpu, sumCase(true, false, 1024, 1024),
                                partitionedOuter(), /*siteStats=*/true));
    std::printf("\n");
    table(series, siteRows, 34);

    std::printf(
        "\nShapes to check:\n"
        "  - bandCompact speedup grows with the outer size (more blocks\n"
        "    skipped per class) and Identical stays 1;\n"
        "  - the data-dependent fallback row costs ~1x (classing probes\n"
        "    the first block pair, then simulates all blocks exactly);\n"
        "  - the uniform --stats rows class with per-site attribution\n"
        "    on; the other two trip the runtime divergence probes and\n"
        "    fall back — bit-identical either way.\n");
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
