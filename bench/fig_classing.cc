/**
 * @file
 * Block-equivalence classing payoff: wall-clock of full (every-block)
 * vs classed metrics-only simulation, on the shapes classing was built
 * for. Two sections:
 *
 *   1. Variable-size programs (the Fig 16 family): a class-invariant
 *      nested filter (bandCompact) sweeps the outer size — classed
 *      simulation visits two representative blocks per class while the
 *      full run visits all of them, so the speedup grows with the outer
 *      size. A data-dependent variant (sumPositiveRows) rides along to
 *      show the exact fallback costs ~1x.
 *
 *   2. Per-site attribution (--stats): dense sum kernels with
 *      siteStats on — the sweep that used to force exact simulation
 *      and now classes.
 *
 * Columns: full ms, classed ms, speedup (full/classed), identical
 * (1 = reports bit-identical, checked by reportsBitIdentical; a 0 aborts
 * the binary). Both modes run through the uncached Gpu::run path, so
 * every timing is a true re-simulation.
 */

#include <functional>
#include <memory>

#include "apps/sums.h"
#include "common.h"
#include "ir/builder.h"
#include "pipeline.h"
#include "support/rng.h"

namespace npp {
namespace {

/** A program plus its bound inputs and (metrics-only, never written)
 *  outputs, ready to time. */
struct BenchCase
{
    std::string label;
    std::shared_ptr<Program> prog;
    std::function<void(Bindings &)> bind;
};

std::shared_ptr<std::vector<double>>
signedData(int64_t n, uint64_t seed)
{
    auto m = std::make_shared<std::vector<double>>(std::max<int64_t>(n, 1));
    Rng rng(seed);
    for (auto &x : *m)
        x = rng.uniform(-1, 1);
    return m;
}

/** The classable variable-size kernel from the differential suite: the
 *  filter predicate depends only on the inner index and a launch
 *  parameter, so every block walks the compaction cursor identically. */
BenchCase
bandCompactCase(int64_t R, int64_t C)
{
    ProgramBuilder b("bandCompact");
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), cc = b.paramI64("C");
    Arr out = b.outF64("out");
    Arr cnts = b.outF64("counts");
    b.foreach(r, [&](Body &outer, Ex i) {
        Filtered kept = outer.filter(cc, [&](Body &, Ex j) {
            return FilterItem{Ex(j) * 2 < cc, m(i * cc + j) * 2.0};
        });
        outer.store(cnts, i, kept.count);
        outer.foreach(cc, [&](Body &fn, Ex j) {
            fn.branch(Ex(j) < kept.count, [&](Body &t) {
                t.store(out, i * cc + j, kept.items(j));
            });
        });
    });
    BenchCase c;
    c.label = "bandCompact " + std::to_string(R) + "x" + std::to_string(C);
    c.prog = std::make_shared<Program>(b.build());
    auto mData = signedData(R * C, 0x5eedULL);
    auto outData = std::make_shared<std::vector<double>>(R * C, 0.0);
    auto cntData = std::make_shared<std::vector<double>>(R, 0.0);
    c.bind = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(cc, static_cast<double>(C));
        args.array(m, *mData);
        args.array(out, *outData);
        args.array(cnts, *cntData);
    };
    return c;
}

/** Fig 16's data-dependent variable-size kernel: the predicate reads
 *  the matrix, classing falls back, speedup ~1x. */
BenchCase
sumPositivesCase(int64_t R, int64_t C)
{
    SumsProgram sp = buildSumPositives(/*byCols=*/false);
    BenchCase c;
    c.label = sp.prog->name() + " " + std::to_string(R) + "x" +
              std::to_string(C) + " (fallback)";
    c.prog = sp.prog;
    auto mData = signedData(R * C, 0xfeedULL);
    auto outData =
        std::make_shared<std::vector<double>>(sp.outputSize(R, C), 0.0);
    c.bind = [=](Bindings &args) {
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *mData);
        args.array(sp.out, *outData);
    };
    return c;
}

/** Dense sum kernel (Fig 1 / Fig 15) for the per-site attribution
 *  sweep. */
BenchCase
sumCase(bool byCols, bool weighted, int64_t R, int64_t C)
{
    SumsProgram sp = buildSum(byCols, weighted);
    BenchCase c;
    c.label = sp.prog->name() + " " + std::to_string(R) + "x" +
              std::to_string(C);
    c.prog = sp.prog;
    auto mData = signedData(R * C, 0xfeedULL);
    auto vData = signedData(std::max(R, C), 0xbeefULL);
    auto outData =
        std::make_shared<std::vector<double>>(sp.outputSize(R, C), 0.0);
    c.bind = [=](Bindings &args) {
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *mData);
        if (sp.weighted)
            args.array(sp.v, *vData);
        args.array(sp.out, *outData);
    };
    return c;
}

/** Fixed two-level mapping matching the differential suite: outer
 *  partitioned across blocks, inner span-all — many blocks, so
 *  classing has real work to skip. (The relative-base coalescing model
 *  is invariant under the per-block output shifts regardless of their
 *  alignment, so the block size no longer has to keep shifts at 128B
 *  multiples.) */
CompileOptions
partitionedOuter()
{
    CompileOptions copts;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping.levels = {{0, 16, SpanType::one()},
                                 {1, 32, SpanType::all()}};
    return copts;
}

/** Classed rows (classReason empty) that ran slower than 0.95x the full
 *  simulation — classing must never cost wall-clock; any entry here
 *  fails the binary. */
std::vector<std::string> slowClassedRows;

Row
timeCase(const Gpu &gpu, const BenchCase &c, const CompileOptions &copts,
         bool siteStats)
{
    CompileResult compiled = compileProgram(*c.prog, gpu.config(), copts);
    Bindings args(*c.prog);
    c.bind(args);
    ClassedTiming t = timeClassedVsFull(gpu, compiled.spec, args, siteStats);
    if (!t.identical) {
        std::fprintf(stderr,
                     "fig_classing: %s: classed report is NOT bit-identical "
                     "to the full simulation\n",
                     c.label.c_str());
        std::exit(4);
    }
    if (!t.classReason.empty()) {
        std::printf("  %-34s every block simulated (%s)\n", c.label.c_str(),
                    t.classReason.c_str());
    } else {
        std::printf("  %-34s %lld blocks replicated from class "
                    "representatives\n",
                    c.label.c_str(),
                    static_cast<long long>(t.classedBlocks));
        if (t.fullMs / t.classedMs < 0.95)
            slowClassedRows.push_back(c.label);
    }
    return Row{c.label,
               {t.fullMs, t.classedMs, t.fullMs / t.classedMs,
                t.identical ? 1.0 : 0.0}};
}

void
runFigure()
{
    Gpu gpu;
    const std::vector<std::string> series = {"Full (ms)", "Classed (ms)",
                                             "Speedup", "Identical"};

    banner("Classing payoff: variable-size programs (Fig 16 shapes)",
           "Full vs classed metrics-only simulation; identical=1 means "
           "bit-identical reports.");
    std::vector<Row> varRows;
    for (int64_t R : {2048, 8192, 32768})
        varRows.push_back(
            timeCase(gpu, bandCompactCase(R, 64), partitionedOuter(),
                     /*siteStats=*/false));
    varRows.push_back(timeCase(gpu, sumPositivesCase(2048, 64),
                               partitionedOuter(), /*siteStats=*/false));
    std::printf("\n");
    table(series, varRows, 34);

    banner("Classing payoff: per-site attribution (--stats sweep)",
           "siteStats no longer forces exact simulation; reports stay "
           "bit-identical.");
    // All four dense shapes class under the relative-base coalescing
    // model. Two of them (sumWeightedRows at 512^2, sumCols at 1024^2)
    // used to trip the runtime divergence probes: the old probe's
    // hashed group keys could merge simultaneously-alive warp groups in
    // a block-dependent way, making a handful of blocks look different.
    // Exact keys plus min-base segment counting removed the artifact.
    std::vector<Row> siteRows;
    siteRows.push_back(timeCase(gpu, sumCase(false, false, 1024, 1024),
                                partitionedOuter(), /*siteStats=*/true));
    siteRows.push_back(timeCase(gpu, sumCase(false, true, 512, 512),
                                partitionedOuter(), /*siteStats=*/true));
    siteRows.push_back(timeCase(gpu, sumCase(true, true, 256, 256),
                                partitionedOuter(), /*siteStats=*/true));
    siteRows.push_back(timeCase(gpu, sumCase(true, false, 1024, 1024),
                                partitionedOuter(), /*siteStats=*/true));
    std::printf("\n");
    table(series, siteRows, 34);

    std::printf(
        "\nShapes to check:\n"
        "  - bandCompact speedup grows with the outer size (more blocks\n"
        "    skipped per class) and Identical stays 1;\n"
        "  - the data-dependent fallback row costs ~1x (classing probes\n"
        "    a block spread, then simulates all blocks exactly);\n"
        "  - every --stats row classes with per-site attribution on,\n"
        "    including the two shapes the old absolute-address model\n"
        "    refused (sumWeightedRows 512^2, sumCols 1024^2).\n");

    if (!slowClassedRows.empty()) {
        std::fprintf(stderr, "fig_classing: classed rows slower than 0.95x "
                             "the full simulation:\n");
        for (const auto &label : slowClassedRows)
            std::fprintf(stderr, "  %s\n", label.c_str());
        std::exit(5);
    }
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
