/**
 * @file
 * Figure 16: impact of the dynamic-allocation optimizations (Section
 * V-A) on sumWeightedRows / sumWeightedCols — per-thread malloc vs
 * preallocation with a fixed row-major layout vs preallocation with the
 * mapping-selected layout. Execution time normalized to the fully
 * optimized version (= 1.0, lower is better). The mapping itself is held
 * fixed across the three bars (only the allocation handling varies).
 */

#include "apps/sums.h"
#include "common.h"

namespace npp {
namespace {

double
timeWith(const Gpu &gpu, const SumsProgram &sp, int64_t r, int64_t c,
         const PreallocOptions &popts)
{
    // Compile once with full optimization to fix the mapping; rerun with
    // the ablated allocation handling under that same mapping.
    CompileOptions base;
    base.paramValues = {{sp.r.ref()->varId, static_cast<double>(r)},
                        {sp.c.ref()->varId, static_cast<double>(c)}};
    CompileResult full = compileProgram(*sp.prog, gpu.config(), base);

    CompileOptions copts = base;
    copts.strategy = Strategy::Fixed;
    copts.fixedMapping = full.spec.mapping;
    copts.prealloc = popts;
    return runSum(gpu, sp, r, c, copts).totalMs;
}

void
runFigure()
{
    Gpu gpu;
    const int64_t R = 2048, C = 2048;

    banner("Figure 16: optimizing dynamic memory allocations",
           "Bars: execution time normalized to prealloc+layout "
           "(= 1.0).");

    PreallocOptions fullOpt;
    PreallocOptions noLayout;
    noLayout.layoutFromMapping = false;
    PreallocOptions mallocOpts;
    mallocOpts.enable = false;

    std::vector<Row> rows;
    for (bool byCols : {true, false}) {
        SumsProgram sp = buildSum(byCols, true);
        const double best = timeWith(gpu, sp, R, C, fullOpt);
        rows.push_back({sp.prog->name(),
                        {1.0, timeWith(gpu, sp, R, C, noLayout) / best,
                         timeWith(gpu, sp, R, C, mallocOpts) / best}});
    }
    // Variable-size nested outputs (Section V-A's static upper bound):
    // the nested filter's local is preallocated at the full inner size
    // and finalized by the compaction kernel; the same three allocation
    // modes apply.
    for (bool byCols : {true, false}) {
        SumsProgram sp = buildSumPositives(byCols);
        const double best = timeWith(gpu, sp, R, C, fullOpt);
        rows.push_back({sp.prog->name(),
                        {1.0, timeWith(gpu, sp, R, C, noLayout) / best,
                         timeWith(gpu, sp, R, C, mallocOpts) / best}});
    }
    table({"Prealloc+layout", "Prealloc w/o layout", "Malloc"}, rows);

    std::printf(
        "\nPaper shapes to check:\n"
        "  - Malloc is an order of magnitude slower (paper: 16x-21x);\n"
        "  - the fixed row-major layout hurts the Cols variant (~5x)\n"
        "    but not the Rows variant;\n"
        "  - with the mapping-selected layout both variants take the\n"
        "    same time;\n"
        "  - the sumPositive* rows (variable-size nested filter) keep\n"
        "    the same prealloc/layout ordering: the compaction stage\n"
        "    adds a fixed cost that does not depend on the allocation\n"
        "    mode.\n");
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
