/**
 * @file
 * Multi-device sharding payoff: for each program the fleet search
 * (sim/fleet.h) sweeps (deviceCount, splitPoint) over simulated K20c
 * fleets and reports the chosen placement next to the single-device
 * time. Rows cover map roots (dense sums), a root reduction (dot
 * product, which pays the device-count-sized combine), and a domain too
 * small to shard (hard-filtered back to one device).
 *
 * Columns: single-device ms, best fleet ms, chosen device count, chosen
 * split point (first-shard size; outer size when unsharded), speedup.
 *
 * Two gates make this binary a regression check, not just a figure:
 *   - every case's one-device fleet run must be bit-identical to the
 *     plain Gpu::run report (reportsBitIdentical), or the binary exits
 *     nonzero — sharding must be invisible at N=1;
 *   - at least one program must pick N>1 with a speedup over N=1, or
 *     the sweep has stopped paying and the binary exits nonzero.
 */

#include <functional>
#include <memory>

#include "apps/sums.h"
#include "common.h"
#include "ir/builder.h"
#include "pipeline.h"
#include "sim/fleet.h"
#include "sim/metrics.h"
#include "support/rng.h"

namespace npp {
namespace {

struct BenchCase
{
    std::string label;
    std::shared_ptr<Program> prog;
    std::function<void(Bindings &)> bind;
};

std::shared_ptr<std::vector<double>>
signedData(int64_t n, uint64_t seed)
{
    auto m = std::make_shared<std::vector<double>>(std::max<int64_t>(n, 1));
    Rng rng(seed);
    for (auto &x : *m)
        x = rng.uniform(-1, 1);
    return m;
}

/** Dense sum kernels (Fig 1 / Fig 15 shapes): map roots whose outer
 *  domain shards cleanly. */
BenchCase
sumCase(bool byCols, bool weighted, int64_t R, int64_t C,
        const char *suffix = "")
{
    SumsProgram sp = buildSum(byCols, weighted);
    BenchCase c;
    c.label = sp.prog->name() + " " + std::to_string(R) + "x" +
              std::to_string(C) + suffix;
    c.prog = sp.prog;
    auto mData = signedData(R * C, 0xfeedULL);
    auto vData = signedData(std::max(R, C), 0xbeefULL);
    auto outData =
        std::make_shared<std::vector<double>>(sp.outputSize(R, C), 0.0);
    c.bind = [=](Bindings &args) {
        args.scalar(sp.r, static_cast<double>(R));
        args.scalar(sp.c, static_cast<double>(C));
        args.array(sp.m, *mData);
        if (sp.weighted)
            args.array(sp.v, *vData);
        args.array(sp.out, *outData);
    };
    return c;
}

/** Root reduction: fleet devices each produce a partial and pay the
 *  device-count-sized combine on top of the peer transfers. */
BenchCase
dotCase(int64_t N)
{
    ProgramBuilder b("dotProduct");
    Arr x = b.inF64("x");
    Arr y = b.inF64("y");
    Ex n = b.paramI64("N");
    Arr out = b.outF64("out");
    b.reduce(n, Op::Add, out,
             [&](Body &, Ex i) { return x(i) * y(i); });
    BenchCase c;
    c.label = "dotProduct " + std::to_string(N);
    c.prog = std::make_shared<Program>(b.build());
    auto xData = signedData(N, 0x5eedULL);
    auto yData = signedData(N, 0xd00dULL);
    auto outData = std::make_shared<std::vector<double>>(1, 0.0);
    c.bind = [=](Bindings &args) {
        args.scalar(n, static_cast<double>(N));
        args.array(x, *xData);
        args.array(y, *yData);
        args.array(out, *outData);
    };
    return c;
}

Row
sweepCase(const Gpu &gpu, const BenchCase &c, int maxDevices)
{
    CompileOptions copts; // default multidim search, as nppc runs it
    CompileResult compiled = compileProgram(*c.prog, gpu.config(), copts);
    Bindings args(*c.prog);
    c.bind(args);

    ExecOptions eopts;
    eopts.metricsOnly = true;

    // Gate 1: the one-device fleet run must be indistinguishable from
    // the plain single-device simulation.
    const SimReport base = gpu.run(compiled.spec, args, eopts);
    const FleetReport one =
        runOnFleet(gpu, compiled.spec, args, fleetK20c(1), eopts);
    if (one.perDevice.size() != 1 ||
        !reportsBitIdentical(base, one.perDevice[0])) {
        std::fprintf(stderr,
                     "fig_multidev: %s: one-device fleet run is NOT "
                     "bit-identical to the single-device baseline\n",
                     c.label.c_str());
        std::exit(4);
    }

    const FleetChoice choice =
        searchFleet(gpu, compiled.spec, args, fleetK20c(maxDevices), eopts);
    std::printf("  %-28s -> devices=%d%s\n", c.label.c_str(),
                choice.deviceCount,
                choice.deviceCount > 1 ? "" : " (sharding filtered or"
                                              " does not pay)");
    return Row{c.label,
               {choice.singleMs, choice.fleetMs,
                static_cast<double>(choice.deviceCount),
                static_cast<double>(choice.splitPoint >= 0
                                        ? choice.splitPoint
                                        : choice.best.plan.outerSize),
                choice.speedup}};
}

void
runFigure()
{
    Gpu gpu;
    const std::vector<std::string> series = {
        "Single (ms)", "Fleet (ms)", "Devices", "Split", "Speedup"};

    banner("Multi-device sharding payoff (simulated K20c fleet, 8 devices "
           "max)",
           "Outer-domain sharding across homogeneous devices; peer link "
           "10 GB/s, 8 us latency.");
    std::vector<Row> rows;
    rows.push_back(sweepCase(gpu, sumCase(false, false, 2048, 2048), 8));
    rows.push_back(sweepCase(gpu, sumCase(false, true, 2048, 1024), 8));
    rows.push_back(sweepCase(gpu, sumCase(false, false, 4096, 64), 8));
    rows.push_back(sweepCase(gpu, dotCase(int64_t(1) << 20), 8));
    // 4 rows of 64 elements: less than one root block per device at
    // N>=2, so every sharded candidate is hard-filtered.
    rows.push_back(
        sweepCase(gpu, sumCase(false, false, 4, 64, " (tiny)"), 8));
    std::printf("\n");
    table(series, rows, 28);

    std::printf(
        "\nShapes to check:\n"
        "  - compute-heavy dense sums shard with near-linear per-device\n"
        "    speedup minus the peer-transfer tax (Split = first-shard\n"
        "    size); the skinny 4096x64 shape stays on one device because\n"
        "    shipping its output outweighs the saved compute;\n"
        "  - the root reduction still pays off: one scalar partial per\n"
        "    device plus the device-count-sized combine;\n"
        "  - the tiny row stays on one device (hard filter: less than\n"
        "    one root block per device), speedup exactly 1.\n");

    // Gate 2: the figure's reason to exist.
    bool anySharded = false;
    for (const Row &r : rows)
        anySharded |= r.values[2] > 1.0 && r.values[4] > 1.0;
    if (!anySharded) {
        std::fprintf(stderr,
                     "fig_multidev: no program chose more than one device "
                     "with a speedup — the sweep no longer pays\n");
        std::exit(6);
    }
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
