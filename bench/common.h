/**
 * @file
 * Shared helpers for the figure-reproduction benches: fixed-width table
 * printing in the shape of the paper's charts, and the normalized-bar
 * convention (each figure states what the bars are normalized to).
 */

#ifndef NPP_BENCH_COMMON_H
#define NPP_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "support/strings.h"

namespace npp {

/** Print a figure banner. */
inline void
banner(const std::string &title, const std::string &note)
{
    std::printf("\n%s\n", repeat("=", 72).c_str());
    std::printf("%s\n", title.c_str());
    if (!note.empty())
        std::printf("%s\n", note.c_str());
    std::printf("%s\n", repeat("=", 72).c_str());
}

/** One row of a normalized-bars table. */
struct Row
{
    std::string label;
    std::vector<double> values;
};

/** Print a table of normalized values with one column per series. */
inline void
table(const std::vector<std::string> &series, const std::vector<Row> &rows,
      int labelWidth = 22)
{
    std::printf("%s", padRight("", labelWidth).c_str());
    for (const auto &s : series)
        std::printf("%s", padLeft(s, 14).c_str());
    std::printf("\n");
    for (const auto &row : rows) {
        std::printf("%s", padRight(row.label, labelWidth).c_str());
        for (double v : row.values)
            std::printf("%s", padLeft(fixed(v, 2), 14).c_str());
        std::printf("\n");
    }
}

} // namespace npp

#endif // NPP_BENCH_COMMON_H
