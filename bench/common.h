/**
 * @file
 * Shared helpers for the figure-reproduction benches: fixed-width table
 * printing in the shape of the paper's charts, the normalized-bar
 * convention (each figure states what the bars are normalized to), and
 * machine-readable diagnostics shared by every figure binary:
 *
 *     fig13_fixed2d [--json=FILE] [--trace=FILE] [--stats=FILE]
 *
 * --json dumps every printed table (per-row labels and values) as JSON,
 * --trace records pipeline spans to chrome://tracing JSON, and --stats
 * writes the flat trace-counter summary plus EvalCache counters. All
 * three are off by default; the printed tables are bit-identical with
 * and without them.
 *
 * Every table is validated before printing: a row with no values (an
 * empty candidate/result set upstream) or a NaN/inf value aborts the
 * binary with a nonzero exit code naming the offending row, so sweeps
 * that silently produce garbage cannot masquerade as green in scripts.
 */

#ifndef NPP_BENCH_COMMON_H
#define NPP_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/evalcache.h"
#include "support/strings.h"
#include "support/trace.h"

namespace npp {

/** One row of a normalized-bars table. */
struct Row
{
    std::string label;
    std::vector<double> values;
};

/** Process-wide bench I/O state: output paths parsed from argv and the
 *  JSON sections accumulated by table(). */
struct BenchIo
{
    std::string jsonPath;
    std::string tracePath;
    std::string statsPath;
    std::string sectionTitle; // most recent banner
    std::string sectionsJson; // accumulated table() sections
};

inline BenchIo &
benchIo()
{
    static BenchIo io;
    return io;
}

inline std::string
benchJsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Parse the shared bench flags; returns 0 to proceed, nonzero (the
 *  process exit code) on an unrecognized argument. Enables tracing when
 *  --trace or --stats is given (both consume the recorded registry). */
inline int
benchInit(int argc, char **argv)
{
    BenchIo &io = benchIo();
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            io.jsonPath = arg.substr(std::strlen("--json="));
        else if (arg.rfind("--trace=", 0) == 0)
            io.tracePath = arg.substr(std::strlen("--trace="));
        else if (arg.rfind("--stats=", 0) == 0)
            io.statsPath = arg.substr(std::strlen("--stats="));
        else {
            std::fprintf(stderr,
                         "usage: %s [--json=FILE] [--trace=FILE] "
                         "[--stats=FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!io.tracePath.empty() || !io.statsPath.empty())
        Trace::instance().setEnabled(true);
    return 0;
}

/** Write the outputs requested by benchInit(); returns the process exit
 *  code (nonzero if any file could not be written). */
inline int
benchFinish()
{
    BenchIo &io = benchIo();
    int rc = 0;
    if (!io.jsonPath.empty()) {
        const std::string doc =
            "{\"sections\":[" + io.sectionsJson + "]}\n";
        FILE *f = std::fopen(io.jsonPath.c_str(), "wb");
        if (!f) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         io.jsonPath.c_str());
            rc = 1;
        } else {
            std::fwrite(doc.data(), 1, doc.size(), f);
            std::fclose(f);
        }
    }
    if (!io.tracePath.empty() &&
        !Trace::instance().writeChromeTrace(io.tracePath))
        rc = 1;
    if (!io.statsPath.empty()) {
        const std::string doc =
            "{\"trace\":" + Trace::instance().flatJson() +
            ",\"eval_cache\":" + EvalCache::instance().stats().toJson() +
            "}\n";
        FILE *f = std::fopen(io.statsPath.c_str(), "wb");
        if (!f) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         io.statsPath.c_str());
            rc = 1;
        } else {
            std::fwrite(doc.data(), 1, doc.size(), f);
            std::fclose(f);
        }
    }
    return rc;
}

/** Print a figure banner. */
inline void
banner(const std::string &title, const std::string &note)
{
    benchIo().sectionTitle = title;
    std::printf("\n%s\n", repeat("=", 72).c_str());
    std::printf("%s\n", title.c_str());
    if (!note.empty())
        std::printf("%s\n", note.c_str());
    std::printf("%s\n", repeat("=", 72).c_str());
}

/** Abort with a nonzero exit naming the first broken row: no values at
 *  all (an empty candidate/result set upstream) or a NaN/inf value. */
inline void
validateRows(const std::vector<Row> &rows)
{
    for (const auto &row : rows) {
        if (row.values.empty()) {
            std::fprintf(stderr,
                         "bench: row \"%s\" produced no values (empty "
                         "candidate/result set)\n",
                         row.label.c_str());
            std::exit(3);
        }
        for (double v : row.values) {
            if (!std::isfinite(v)) {
                std::fprintf(stderr,
                             "bench: row \"%s\" contains a non-finite "
                             "value (%g)\n",
                             row.label.c_str(), v);
                std::exit(3);
            }
        }
    }
}

/** Print a table of normalized values with one column per series.
 *  Validates every row first (see validateRows) and, when --json was
 *  given, appends the table as a JSON section. */
inline void
table(const std::vector<std::string> &series, const std::vector<Row> &rows,
      int labelWidth = 22)
{
    validateRows(rows);

    BenchIo &io = benchIo();
    if (!io.jsonPath.empty()) {
        std::string sec;
        sec += "{\"title\":\"" + benchJsonEscape(io.sectionTitle) + "\"";
        sec += ",\"series\":[";
        for (size_t i = 0; i < series.size(); i++) {
            sec += (i ? "," : "");
            sec += "\"" + benchJsonEscape(series[i]) + "\"";
        }
        sec += "],\"rows\":[";
        for (size_t i = 0; i < rows.size(); i++) {
            sec += (i ? "," : "");
            sec += "{\"label\":\"" + benchJsonEscape(rows[i].label) +
                   "\",\"values\":[";
            for (size_t j = 0; j < rows[i].values.size(); j++) {
                char buf[40];
                std::snprintf(buf, sizeof buf, "%s%.17g", j ? "," : "",
                              rows[i].values[j]);
                sec += buf;
            }
            sec += "]}";
        }
        sec += "]}";
        if (!io.sectionsJson.empty())
            io.sectionsJson += ",";
        io.sectionsJson += sec;
    }

    std::printf("%s", padRight("", labelWidth).c_str());
    for (const auto &s : series)
        std::printf("%s", padLeft(s, 14).c_str());
    std::printf("\n");
    for (const auto &row : rows) {
        std::printf("%s", padRight(row.label, labelWidth).c_str());
        for (double v : row.values)
            std::printf("%s", padLeft(fixed(v, 2), 14).c_str());
        std::printf("\n");
    }
}

} // namespace npp

#endif // NPP_BENCH_COMMON_H
