/**
 * @file
 * Ablation: how good is each mapping-selection policy? For a set of
 * kernels, compare (a) the paper's soft-constraint score, (b) the
 * analytical time model (the Section VI-G future-work refinement), and
 * (c) the empirical autotuner (top-8 candidates executed), all
 * normalized to the best mapping any policy found (1.0 = found the
 * best).
 */

#include "codegen/autotune.h"
#include "common.h"
#include "ir/builder.h"
#include "sim/gpu.h"
#include "support/rng.h"

namespace npp {
namespace {

struct Kernel
{
    std::string label;
    std::shared_ptr<Program> prog;
    std::function<void(Bindings &)> bind;
    std::unordered_map<int, double> params;
};

std::vector<double> &
sharedData(int64_t n)
{
    static std::vector<double> d;
    if (static_cast<int64_t>(d.size()) < n) {
        Rng rng(11);
        d.resize(n);
        for (auto &v : d)
            v = rng.uniform(0, 1);
    }
    return d;
}

Kernel
sumKernel(bool byCols, int64_t R, int64_t C, const std::string &label)
{
    ProgramBuilder b(label);
    Arr m = b.inF64("m");
    Ex r = b.paramI64("R"), c = b.paramI64("C");
    Arr out = b.outF64("out");
    if (byCols) {
        b.map(c, out, [&](Body &fn, Ex j) {
            return fn.reduce(r, Op::Add,
                             [&](Body &, Ex i) { return m(i * c + j); });
        });
    } else {
        b.map(r, out, [&](Body &fn, Ex i) {
            return fn.reduce(c, Op::Add,
                             [&](Body &, Ex j) { return m(i * c + j); });
        });
    }
    Kernel k;
    k.label = fmt("{} [{}x{}]", label, R, C);
    k.prog = std::make_shared<Program>(b.build());
    k.params = {{r.ref()->varId, static_cast<double>(R)},
                {c.ref()->varId, static_cast<double>(C)}};
    auto outLen = byCols ? C : R;
    k.bind = [=](Bindings &args) {
        args.scalar(r, static_cast<double>(R));
        args.scalar(c, static_cast<double>(C));
        args.array(m, sharedData(R * C));
        static std::vector<double> outBuf;
        outBuf.assign(outLen, 0.0);
        args.array(out, outBuf);
    };
    return k;
}

double
runWith(const Gpu &gpu, const Kernel &k, const CompileOptions &copts)
{
    Bindings args(*k.prog);
    k.bind(args);
    return gpu.compileAndRun(*k.prog, args, copts).totalMs;
}

void
runAblation()
{
    Gpu gpu;
    banner("Ablation: mapping-selection policy quality",
           "Time of each policy's selected mapping, normalized to the "
           "best mapping any policy found (1.0 = optimal).");

    std::vector<Kernel> kernels;
    kernels.push_back(sumKernel(false, 2048, 2048, "sumRows"));
    kernels.push_back(sumKernel(false, 64, 65536, "sumRows-skewed"));
    kernels.push_back(sumKernel(true, 16384, 256, "sumCols-tall"));
    kernels.push_back(sumKernel(true, 256, 16384, "sumCols-wide"));

    std::vector<Row> rows;
    for (const auto &k : kernels) {
        CompileOptions score;
        score.paramValues = k.params;
        const double tScore = runWith(gpu, k, score);

        CompileOptions model = score;
        model.objective = SearchObjective::StaticModel;
        const double tModel = runWith(gpu, k, model);

        Bindings args(*k.prog);
        k.bind(args);
        AutotuneOptions aopts;
        aopts.topCandidates = 8;
        AutotuneResult tuned = autotune(*k.prog, gpu, args, score, aopts);

        const double best =
            std::min({tScore, tModel, tuned.bestMs});
        rows.push_back({k.label,
                        {tScore / best, tModel / best,
                         tuned.bestMs / best}});
    }
    table({"SoftScore", "StaticModel", "Autotune-8"}, rows, 26);

    std::printf(
        "\nReading: the paper's soft-constraint score already lands on\n"
        "or near the best mapping; the analytical model closes part of\n"
        "the false-negative gap of Fig 17; executing the top-8\n"
        "candidates (autotuning) pins the optimum by construction.\n");
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runAblation();
    return npp::benchFinish();
}
