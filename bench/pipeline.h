/**
 * @file
 * The figure sweeps (Fig 12/13/14) factored into reusable functions so
 * that (a) the per-figure binaries and (b) the pipeline benchmark in
 * compiler_microbench drive the exact same work. Each sweep can run its
 * per-application work serially or on the task pool (support/parallel.h);
 * applications are independent (each App instance owns its inputs and
 * buffers, the EvalCache and the output tables are the only shared
 * structures and both are synchronized), so the two modes produce
 * identical rows.
 */

#ifndef NPP_BENCH_PIPELINE_H
#define NPP_BENCH_PIPELINE_H

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/realworld.h"
#include "apps/rodinia.h"
#include "common.h"
#include "support/parallel.h"
#include "support/trace.h"

namespace npp {

/** Wall-clock comparison of classed vs full (every-block) metrics-only
 *  simulation of one compiled launch, used by fig_classing. Both modes
 *  run `repeats` times (min wall time is reported) through the uncached
 *  Gpu::run path, and the reports are checked bit-identical — the same
 *  contract the differential suite (tests/sim/classed_vs_full_test)
 *  enforces, re-verified on the benchmark shapes. */
struct ClassedTiming
{
    double fullMs = 0.0;
    double classedMs = 0.0;
    bool identical = false;
    int64_t classedBlocks = 0;
    std::string classReason; //!< empty when classing engaged
};

inline ClassedTiming
timeClassedVsFull(const Gpu &gpu, const KernelSpec &spec,
                  const Bindings &args, bool siteStats = false,
                  int repeats = 3)
{
    using clock = std::chrono::steady_clock;
    const auto once = [&](bool classed) {
        ExecOptions eopts;
        eopts.metricsOnly = true;
        eopts.blockClasses = classed;
        eopts.siteStats = siteStats;
        const auto t0 = clock::now();
        SimReport rep = gpu.run(spec, args, eopts);
        const double ms =
            std::chrono::duration<double, std::milli>(clock::now() - t0)
                .count();
        return std::make_pair(rep, ms);
    };

    ClassedTiming t;
    SimReport full, classed;
    for (int i = 0; i < repeats; i++) {
        auto [fullRep, fullMs] = once(false);
        auto [classedRep, classedMs] = once(true);
        if (i == 0 || fullMs < t.fullMs) {
            t.fullMs = fullMs;
            full = fullRep;
        }
        if (i == 0 || classedMs < t.classedMs) {
            t.classedMs = classedMs;
            classed = classedRep;
        }
    }
    t.identical = reportsBitIdentical(full, classed);
    t.classedBlocks = classed.stats.classedBlocks;
    t.classReason = classed.stats.classReason;
    return t;
}

/** Run one Row-producing job per App, serially or on the task pool.
 *  Row order always matches `apps` order. */
template <typename EvalFn>
inline std::vector<Row>
sweepApps(std::vector<std::unique_ptr<App>> &apps, bool parallel,
          EvalFn eval)
{
    const auto traced = [&](App &app) {
        NPP_TRACE_SCOPE("bench.app");
        NPP_TRACE_COUNT("bench.apps", 1);
        return eval(app);
    };
    if (!parallel) {
        std::vector<Row> rows;
        rows.reserve(apps.size());
        for (auto &app : apps)
            rows.push_back(traced(*app));
        return rows;
    }
    return parallelMap<Row>(
        static_cast<int64_t>(apps.size()),
        [&](int64_t i) { return traced(*apps[static_cast<size_t>(i)]); });
}

/** Figure 12 sweep: Rodinia apps, Manual / MultiDim / 1D, normalized to
 *  Manual. */
inline std::vector<Row>
fig12Sweep(const Gpu &gpu, bool parallel)
{
    std::vector<std::unique_ptr<App>> apps;
    apps.push_back(makeNearestNeighbor());
    apps.push_back(makeGaussian());
    apps.push_back(makeHotspot());
    apps.push_back(makeMandelbrot());
    apps.push_back(makeSrad());
    apps.push_back(makePathfinder());
    apps.push_back(makeLud());
    apps.push_back(makeBfs());

    return sweepApps(apps, parallel, [&](App &app) {
        const double manual = app.runManualMs(gpu);
        AppResult multi = app.run(gpu, Strategy::MultiDim,
                                  /*validate=*/true);
        AppResult oneD = app.run(gpu, Strategy::OneD);
        if (multi.maxError > 1e-6) {
            std::fprintf(stderr, "%s: validation error %g\n",
                         app.name().c_str(), multi.maxError);
        }
        return Row{app.name(),
                   {1.0, multi.gpuMs / manual, oneD.gpuMs / manual}};
    });
}

/** Figure 13 sweep: fixed 2D strategies on the (R)/(C) Rodinia subset,
 *  normalized to MultiDim. */
inline std::vector<Row>
fig13Sweep(const Gpu &gpu, bool parallel)
{
    std::vector<std::unique_ptr<App>> apps;
    for (bool colMajor : {false, true}) {
        apps.push_back(makeGaussian(192, colMajor));
        apps.push_back(makeHotspot(256, 4, colMajor));
        apps.push_back(makeMandelbrot(256, 1024, 24, colMajor));
        apps.push_back(makeSrad(224, 2, colMajor));
    }

    return sweepApps(apps, parallel, [&](App &app) {
        const double multi = app.run(gpu, Strategy::MultiDim).gpuMs;
        const double tbt =
            app.run(gpu, Strategy::ThreadBlockThread).gpuMs;
        const double warp = app.run(gpu, Strategy::WarpBased).gpuMs;
        return Row{app.name(), {1.0, tbt / multi, warp / multi}};
    });
}

/** Figure 14 sweep: real-world apps vs the CPU baseline. */
inline std::vector<Row>
fig14Sweep(const Gpu &gpu, bool parallel)
{
    std::vector<std::unique_ptr<App>> apps;
    apps.push_back(makeQpscd());
    apps.push_back(makeMsmBuilder());
    apps.push_back(makeNaiveBayes());

    return sweepApps(apps, parallel, [&](App &app) {
        AppResult multi = app.run(gpu, Strategy::MultiDim,
                                  /*validate=*/true);
        AppResult oneD = app.run(gpu, Strategy::OneD);
        if (multi.maxError > 1e-6) {
            std::fprintf(stderr, "%s: validation error %g\n",
                         app.name().c_str(), multi.maxError);
        }
        const double cpu = multi.cpuMs;
        return Row{app.name(),
                   {1.0, oneD.gpuMs / cpu, multi.gpuMs / cpu,
                    (multi.gpuMs + multi.transferMs) / cpu}};
    });
}

} // namespace npp

#endif // NPP_BENCH_PIPELINE_H
