/**
 * @file
 * Figure 14: real-world applications — execution time of the 1D GPU
 * mapping and MultiDim, normalized to the multi-core CPU baseline
 * (CPU = 1.0, lower is better). Naive Bayes additionally reports the
 * input-transfer time, which its one-shot nature cannot amortize.
 */

#include "apps/realworld.h"
#include "common.h"

namespace npp {
namespace {

void
runFigure()
{
    Gpu gpu;
    banner("Figure 14: real-world applications vs multi-core CPU",
           "Bars: execution time normalized to the CPU baseline "
           "(= 1.0). '+xfer' adds the input transfer.");

    std::vector<std::unique_ptr<App>> apps;
    apps.push_back(makeQpscd());
    apps.push_back(makeMsmBuilder());
    apps.push_back(makeNaiveBayes());

    std::vector<Row> rows;
    for (auto &app : apps) {
        AppResult multi = app->run(gpu, Strategy::MultiDim,
                                   /*validate=*/true);
        AppResult oneD = app->run(gpu, Strategy::OneD);
        if (multi.maxError > 1e-6) {
            std::fprintf(stderr, "%s: validation error %g\n",
                         app->name().c_str(), multi.maxError);
        }
        const double cpu = multi.cpuMs;
        rows.push_back({app->name(),
                        {1.0, oneD.gpuMs / cpu, multi.gpuMs / cpu,
                         (multi.gpuMs + multi.transferMs) / cpu}});
    }
    table({"CPU", "1D GPU", "MultiDim", "MultiDim+xfer"}, rows);

    std::printf(
        "\nPaper shapes to check:\n"
        "  - QPSCD: 1D is WORSE than the CPU (random rows cannot\n"
        "    coalesce); MultiDim is several times faster than the CPU;\n"
        "  - MSMBuilder: small per-level domains starve 1D; MultiDim\n"
        "    parallelizes the product of the domains;\n"
        "  - NaiveBayes: MultiDim wins big on kernels, and stays ahead\n"
        "    of the CPU even including the matrix transfer.\n");
}

} // namespace
} // namespace npp

int
main()
{
    npp::runFigure();
    return 0;
}
