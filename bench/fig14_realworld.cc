/**
 * @file
 * Figure 14: real-world applications — execution time of the 1D GPU
 * mapping and MultiDim, normalized to the multi-core CPU baseline
 * (CPU = 1.0, lower is better). Naive Bayes additionally reports the
 * input-transfer time, which its one-shot nature cannot amortize. The
 * sweep runs on the task pool (identical rows to a serial sweep; see
 * bench/pipeline.h).
 */

#include "pipeline.h"

namespace npp {
namespace {

void
runFigure()
{
    Gpu gpu;
    banner("Figure 14: real-world applications vs multi-core CPU",
           "Bars: execution time normalized to the CPU baseline "
           "(= 1.0). '+xfer' adds the input transfer.");

    table({"CPU", "1D GPU", "MultiDim", "MultiDim+xfer"},
          fig14Sweep(gpu, /*parallel=*/true));

    std::printf(
        "\nPaper shapes to check:\n"
        "  - QPSCD: 1D is WORSE than the CPU (random rows cannot\n"
        "    coalesce); MultiDim is several times faster than the CPU;\n"
        "  - MSMBuilder: small per-level domains starve 1D; MultiDim\n"
        "    parallelizes the product of the domains;\n"
        "  - NaiveBayes: MultiDim wins big on kernels, and stays ahead\n"
        "    of the CPU even including the matrix transfer.\n");
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
