/**
 * @file
 * Figure 3: performance of sumCols and sumRows under the fixed mapping
 * strategies (1D, thread-block/thread, warp-based), normalized to the
 * analysis-selected (MultiDim) mapping, across three matrix shapes of
 * equal total size.
 *
 * The paper uses [64K,1K], [8K,8K], [1K,64K]; this reproduction runs the
 * same aspect ratios at 1/4 the element count (the functional simulator
 * interprets every element) — the normalized ratios are what the figure
 * reports, and they are shape-, not size-, driven.
 */

#include "apps/sums.h"
#include "common.h"

namespace npp {
namespace {

double
timeOf(const Gpu &gpu, const SumsProgram &sp, int64_t r, int64_t c,
       Strategy strategy)
{
    CompileOptions copts;
    copts.strategy = strategy;
    return runSum(gpu, sp, r, c, copts).totalMs;
}

void
runFigure()
{
    Gpu gpu;
    const std::vector<std::pair<int64_t, int64_t>> shapes = {
        {32768, 512}, {4096, 4096}, {512, 32768}};
    const std::vector<std::string> shapeNames = {"[64K,1K]/4",
                                                 "[8K,8K]/4",
                                                 "[1K,64K]/4"};

    banner("Figure 3: fixed strategies vs analysis-selected mapping",
           "Bars: execution time normalized to MultiDim (lower is "
           "better; MultiDim = 1.0).");

    for (bool byCols : {true, false}) {
        SumsProgram sp = buildSum(byCols, false);
        std::printf("\n-- %s --\n", sp.prog->name().c_str());
        std::vector<Row> rows;
        double multiRef = -1.0;
        for (size_t i = 0; i < shapes.size(); i++) {
            const auto [r, c] = shapes[i];
            const double multi = timeOf(gpu, sp, r, c, Strategy::MultiDim);
            if (multiRef < 0)
                multiRef = multi;
            Row row;
            row.label = shapeNames[i];
            row.values = {
                timeOf(gpu, sp, r, c, Strategy::OneD) / multi,
                timeOf(gpu, sp, r, c, Strategy::ThreadBlockThread) / multi,
                timeOf(gpu, sp, r, c, Strategy::WarpBased) / multi,
                1.0,
                multi / multiRef,
            };
            rows.push_back(row);
        }
        table({"1D", "TB/Thread", "Warp-based", "MultiDim",
               "multi/first"},
              rows);
    }
    std::printf("\nPaper shape to check: fixed strategies lose by up to "
                "tens of x depending on\nshape; MultiDim stays flat "
                "across shapes (last column stays near 1.0).\n");
}

} // namespace
} // namespace npp

int
main(int argc, char **argv)
{
    if (int rc = npp::benchInit(argc, argv))
        return rc;
    npp::runFigure();
    return npp::benchFinish();
}
